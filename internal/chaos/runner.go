package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"hamband/internal/core"
	"hamband/internal/crdt"
	"hamband/internal/health"
	"hamband/internal/heartbeat"
	"hamband/internal/metrics"
	"hamband/internal/rdma"
	"hamband/internal/sim"
	"hamband/internal/spec"
	"hamband/internal/trace"
)

// Options tunes the nemesis runner. The zero value is a complete, sensible
// configuration.
type Options struct {
	IssuePeriod   sim.Duration // workload batch period (default 50 µs)
	BatchSize     int          // updates per batch (default 4)
	ProbePeriod   sim.Duration // integrity probe period (default 100 µs)
	DrainDeadline sim.Duration // post-heal quiescence budget (default 50 ms)

	// EnableMetrics attaches a metrics registry to the run; the registry
	// is returned on the verdict for inspection (chaos.* counters plus the
	// full rdma/core instrumentation).
	EnableMetrics bool

	// TraceLimit, when positive, attaches a lifecycle tracer holding up to
	// that many events; the tracer is returned on the verdict so the
	// conformance harness can replay the history. Tracing costs no virtual
	// time, so trace hashes are unchanged by it.
	TraceLimit int

	// FlightWindow, when positive, attaches a flight-recorder tracer
	// instead: a ring retaining only the newest FlightWindow events, so the
	// moments leading up to a failure survive arbitrarily long runs at a
	// fixed memory bound. Takes precedence over TraceLimit. Like TraceLimit
	// it costs no virtual time, so trace hashes are unchanged.
	FlightWindow int

	// QueryMix, when positive, issues one random query every QueryMix
	// workload batches, alternating plain and recency-aware (InvokeFresh)
	// evaluation. The conformance harness uses it so traces carry query
	// results to explain; query errors during faults are not violations.
	QueryMix int
}

func (o Options) withDefaults() Options {
	if o.IssuePeriod <= 0 {
		o.IssuePeriod = 50 * sim.Microsecond
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4
	}
	if o.ProbePeriod <= 0 {
		o.ProbePeriod = 100 * sim.Microsecond
	}
	if o.DrainDeadline <= 0 {
		o.DrainDeadline = 50 * sim.Millisecond
	}
	return o
}

// Violation is one probe failure, anchored at the virtual time it was
// detected.
type Violation struct {
	At     sim.Time `json:"at"`
	Probe  string   `json:"probe"` // quiescence | convergence | integrity | lost-update | duplicate | invoke-error
	Detail string   `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", sim.Duration(v.At), v.Probe, v.Detail)
}

// maxViolations bounds the report; a broken run can violate on every probe
// tick and the first few entries carry all the signal.
const maxViolations = 32

// Verdict is the outcome of running one plan.
type Verdict struct {
	Plan       Plan
	Passed     bool
	Violations []Violation
	Drained    bool // reached quiescence within the drain budget

	Issued   int // update calls issued
	Acked    int // calls acknowledged to the client
	Rejected int // calls rejected as impermissible (not failures)

	Makespan  sim.Duration // virtual time from start to verdict
	TraceHash uint64       // FNV-1a over the virtual-time trace; equal seeds ⇒ equal hashes

	Metrics *metrics.Registry // non-nil when Options.EnableMetrics
	Trace   *trace.Tracer     // non-nil when Options.TraceLimit or FlightWindow > 0
	Correct []bool            // per node: eligible for end-state probes (never crashed, not still down)

	// Reconfigs counts the membership changes that committed (join/leave
	// events that won their epoch claim, plus the heal-time rejoins); on a
	// healthy run FinalEpoch equals it. Both are zero on plans without
	// reconfiguration events.
	Reconfigs  int
	FinalEpoch uint32

	// ShardAcked is the per-shard acked-update count on ShardMix runs
	// (nil otherwise). A healthy sharded run acks on every shard.
	ShardAcked []int

	// Anomalies holds every watchdog firing in detection order; Unexpected
	// the subset whose rule no injected fault predicts. Each unexpected
	// firing is also a "watchdog" violation, so a miscalibrated rule (or a
	// cluster misbehaving without a nemesis cause) fails the run.
	Anomalies  []health.Firing `json:"anomalies,omitempty"`
	Unexpected []health.Firing `json:"unexpected,omitempty"`

	// FlightDump is the flight recorder's window captured at the first
	// watchdog firing (nil without FlightWindow or without firings): the
	// moments leading up to the anomaly, frozen before further traffic
	// rotates them out of the ring.
	FlightDump []trace.Event `json:"-"`
}

// Summary renders a one-line verdict for exploration logs.
func (v *Verdict) Summary() string {
	verdict := "PASS"
	if !v.Passed {
		verdict = fmt.Sprintf("FAIL(%d)", len(v.Violations))
	}
	return fmt.Sprintf("class=%-9s seed=%-6d events=%-2d issued=%-4d acked=%-4d makespan=%-10v hash=%016x %s",
		v.Plan.Class, v.Plan.Seed, len(v.Plan.Events), v.Issued, v.Acked, v.Makespan, v.TraceHash, verdict)
}

// runner holds the live state of one plan execution.
type runner struct {
	plan    Plan
	opts    Options
	cls     *spec.Class
	an      *spec.Analysis
	eng     *sim.Engine
	fab     *rdma.Fabric
	cluster *core.Cluster
	rng     *rand.Rand // workload randomness, independent of the engine's

	down    []bool // suspended by the plan (includes leaderkill victims)
	crashed []bool
	leaving []bool // leave event fired (or committed): not a workload origin
	left    []bool // leave committed: rejoined by healAll

	sessions []*session // client sessions (Plan.Sessions), nil otherwise

	acked   [][]uint32 // acked[p][u]: acknowledged updates by origin and method
	pending []int      // in-flight calls by origin
	batches int        // issue ticks seen (drives the query mix)
	v       *Verdict
	wd      *health.Watchdog

	cEvents, cCalls, cViolations *metrics.Counter
}

// Run executes one fault plan and returns its verdict. The run is fully
// deterministic in the plan: equal plans produce equal verdicts and equal
// trace hashes.
func Run(p Plan, opts Options) (*Verdict, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.ShardMix >= 2 {
		return runSharded(p, opts)
	}
	opts = opts.withDefaults()

	cls := classRegistry[p.Class]()
	an := spec.MustAnalyze(cls)
	eng := sim.NewEngine(p.Seed)
	fab := rdma.NewFabric(eng, p.Nodes, rdma.DefaultLatency())

	copts := core.DefaultOptions()
	// Tight detector timings: plans play out over a few milliseconds, so
	// suspicion must fire within tens of microseconds of a failure. The
	// raised trust threshold avoids restore churn on flapping schedules.
	copts.Heartbeat = heartbeat.Config{
		BeatPeriod:     5 * sim.Microsecond,
		CheckPeriod:    10 * sim.Microsecond,
		Threshold:      3,
		TrustThreshold: 2,
	}
	// Integrity is probed (and reported) rather than asserted: a violation
	// must become a verdict, not a panic.
	copts.CheckIntegrity = false
	copts.DisableFailureHandling = p.DisableRecovery
	copts.MutateApplyOrder = p.MutateApplyOrder
	if p.FullSummaries {
		copts.DeltaSummaries = false
		copts.DeltaWire = false
	}
	if p.AnchorInterval > 0 {
		copts.AnchorInterval = p.AnchorInterval
	}

	r := &runner{
		plan: p, opts: opts, cls: cls, an: an, eng: eng, fab: fab,
		rng:     rand.New(rand.NewSource(p.Seed ^ 0x5DEECE66D)),
		down:    make([]bool, p.Nodes),
		crashed: make([]bool, p.Nodes),
		leaving: make([]bool, p.Nodes),
		left:    make([]bool, p.Nodes),
		pending: make([]int, p.Nodes),
		v:       &Verdict{Plan: p},
	}
	if opts.EnableMetrics {
		reg := metrics.New(eng)
		copts.Metrics = reg
		fab.EnableMetrics(reg)
		r.v.Metrics = reg
		r.cEvents = reg.Counter("chaos.events")
		r.cCalls = reg.Counter("chaos.calls")
		r.cViolations = reg.Counter("chaos.violations")
	}
	if opts.FlightWindow > 0 {
		tr := trace.NewFlightRecorder(eng, opts.FlightWindow)
		copts.Tracer = tr
		r.v.Trace = tr
	} else if opts.TraceLimit > 0 {
		tr := trace.New(eng, opts.TraceLimit)
		copts.Tracer = tr
		r.v.Trace = tr
	}
	r.cluster = core.NewCluster(fab, an, copts)
	// The watchdog observes health snapshots on the probe cadence. Both
	// collection and evaluation are read-only and cost no virtual time, so
	// trace hashes are identical with and without it; its firings are
	// cross-checked against the fault plan at the end of the run.
	r.wd = health.NewWatchdog(health.Config{
		Metrics: copts.Metrics,
		Tracer:  copts.Tracer,
		OnFirstFiring: func(health.Firing) {
			if r.v.Trace != nil {
				r.v.FlightDump = r.v.Trace.Events()
			}
		},
	})
	for i := 0; i < p.Nodes; i++ {
		r.acked = append(r.acked, make([]uint32, len(cls.Methods)))
	}
	r.run()
	return r.v, nil
}

func (r *runner) run() {
	// Schedule the nemesis events.
	for _, e := range r.plan.Events {
		e := e
		r.eng.At(e.At, func() { r.apply(e) })
	}

	// Workload: batches of random updates from random live origins.
	issueTick := r.eng.NewTicker(r.opts.IssuePeriod, r.issueBatch)

	// Client sessions, one op per session per tick (Plan.Sessions).
	var sessTick *sim.Ticker
	if r.plan.Sessions > 0 {
		r.startSessions()
		sessTick = r.eng.NewTicker(2*r.opts.IssuePeriod, r.stepSessions)
	}

	// Integrity probe: the invariant must hold at every queried point on
	// every live replica. The watchdog rides the same cadence — its
	// consecutive-observation thresholds are denominated in probe periods.
	probeTick := r.eng.NewTicker(r.opts.ProbePeriod, func() {
		r.probeIntegrity(false)
		r.wd.Observe(health.Collect(r.eng.Now(), r.cluster))
	})

	// Run the schedule out: workload end or last event, whichever is later.
	horizon := sim.Time(sim.Duration(r.plan.Ops/r.opts.BatchSize+2) * r.opts.IssuePeriod)
	for _, e := range r.plan.Events {
		if e.At >= horizon {
			horizon = e.At + 1
		}
	}
	r.eng.RunUntil(horizon)
	issueTick.Cancel()
	if sessTick != nil {
		sessTick.Cancel()
	}

	// Heal the world, then drive to quiescence.
	if !r.plan.NoFinalHeal {
		r.healAll()
	}
	r.v.Drained = r.drain()
	probeTick.Cancel()

	// Final probes over the quiescent state.
	if !r.v.Drained {
		r.violate("quiescence", fmt.Sprintf("not quiescent after %v drain: %d calls in flight from correct origins, replication incomplete=%v",
			r.opts.DrainDeadline, r.pendingCorrect(), !r.replicated()))
	} else {
		r.probeConvergence()
		r.probeExactlyOnce()
	}
	r.probeIntegrity(true)
	classifyFirings(r.v, r.wd, r.violate)

	r.v.Makespan = sim.Duration(r.eng.Now())
	r.v.FinalEpoch = uint32(r.cluster.Epoch())
	r.v.Passed = len(r.v.Violations) == 0
	r.v.Correct = make([]bool, r.plan.Nodes)
	for n := 0; n < r.plan.Nodes; n++ {
		r.v.Correct[n] = r.correct(n)
	}
	// Seal the trace hash with the end-of-run facts so verdict-affecting
	// divergence always shows up in it.
	r.fold(int64(r.eng.Now()), int64(r.v.Issued), int64(r.v.Acked), int64(len(r.v.Violations)))
	r.cluster.Stop()
}

// apply executes one nemesis event at its scheduled time. Events are
// forgiving — resuming a live node or healing an intact link is a no-op —
// so shrinking can drop any single event and still leave a runnable plan.
func (r *runner) apply(e Event) {
	r.cEvents.Inc()
	switch e.Kind {
	case KindSuspend:
		r.suspend(e.Node)
	case KindResume:
		r.resume(e.Node)
	case KindCrash:
		if !r.crashed[e.Node] {
			r.crashed[e.Node] = true
			r.fab.Node(rdma.NodeID(e.Node)).Crash()
		}
	case KindPartition:
		r.fab.Partition(rdma.NodeID(e.A), rdma.NodeID(e.B))
	case KindHeal:
		r.fab.Heal(rdma.NodeID(e.A), rdma.NodeID(e.B))
	case KindDelay:
		r.fab.SetDelay(rdma.NodeID(e.A), rdma.NodeID(e.B), e.Extra, e.Jitter)
	case KindTorn:
		tear := e.Extra
		if tear <= 0 {
			tear = DefaultTear
		}
		r.fab.SetTorn(rdma.NodeID(e.A), rdma.NodeID(e.B), tear, e.Jitter)
	case KindTornHeal:
		r.fab.SetTorn(rdma.NodeID(e.A), rdma.NodeID(e.B), 0, 0)
	case KindLeaderKill:
		r.leaderKill(e.Group)
	case KindLeave:
		r.reconfig(e.Node, false)
	case KindJoin:
		r.reconfig(e.Node, true)
	}
	r.fold(int64(r.eng.Now()), int64(kindIndex(e.Kind)), int64(e.Node), int64(e.A), int64(e.B))
}

func (r *runner) suspend(n int) {
	if r.down[n] || r.crashed[n] {
		return
	}
	r.down[n] = true
	if b := r.cluster.Replica(spec.ProcID(n)).Beater(); b != nil {
		b.Suspend()
	}
	r.fab.Node(rdma.NodeID(n)).Suspend()
}

func (r *runner) resume(n int) {
	if !r.down[n] || r.crashed[n] {
		return
	}
	r.down[n] = false
	if b := r.cluster.Replica(spec.ProcID(n)).Beater(); b != nil {
		b.Resume()
	}
	r.fab.Node(rdma.NodeID(n)).Resume()
}

// leaderKill suspends the current leader of synchronization group g, as
// seen by the lowest-id live replica. Classes without conflicting methods
// have no leaders; the kill then falls on the lowest-id live node so the
// event still perturbs something.
func (r *runner) leaderKill(g int) {
	obs := r.firstLive()
	if obs < 0 {
		return
	}
	victim := obs
	if len(r.an.SyncGroups) > 0 {
		victim = int(r.cluster.Leader(spec.ProcID(obs), g%len(r.an.SyncGroups)))
	}
	r.suspend(victim)
}

func (r *runner) firstLive() int {
	for i := 0; i < r.plan.Nodes; i++ {
		if !r.down[i] && !r.crashed[i] && !r.leaving[i] {
			return i
		}
	}
	return -1
}

// reconfigSettle is how long the runner stops issuing at a leave target
// before driving the membership change: in-flight calls at the target
// drain (and their remote writes land) before its write permission is
// revoked, so no acknowledged call can be silently dropped by the epoch
// gate.
const reconfigSettle = 2 * 50 * sim.Microsecond

// reconfig drives one membership change from a plan event. Reconfiguration
// is asynchronous (membership-view agreement, then the epoch claim); the
// commit folds into the trace hash when it resolves. Failures are
// forgiving like every other nemesis event — a join of a member or a claim
// lost to a concurrent change is a no-op, so shrinking can drop events and
// still leave a runnable plan — but they fold distinctly, so schedules
// that diverge on the outcome diverge in hash.
func (r *runner) reconfig(n int, join bool) {
	if join {
		r.cluster.Join(n, func(err error) {
			if err == nil {
				r.left[n], r.leaving[n] = false, false
				r.v.Reconfigs++
			}
			r.fold(int64(r.eng.Now()), 20, int64(n), reconfigCode(err))
		})
		return
	}
	r.leaving[n] = true // stop issuing here before the permissions go
	r.eng.After(reconfigSettle, func() {
		r.cluster.Leave(n, func(err error) {
			if err == nil {
				r.left[n] = true
				r.v.Reconfigs++
			} else {
				r.leaving[n] = r.left[n]
			}
			r.fold(int64(r.eng.Now()), 21, int64(n), reconfigCode(err))
		})
	})
}

func reconfigCode(err error) int64 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, core.ErrEpochConflict):
		return 1
	case errors.Is(err, core.ErrNoAgreement):
		return 2
	case errors.Is(err, core.ErrAlreadyMember), errors.Is(err, core.ErrNotMember):
		return 3
	case errors.Is(err, core.ErrNoInitiator):
		return 4
	}
	return 5
}

// healAll lifts every remaining fault: suspended nodes resume, all link
// faults clear (releasing parked traffic), and departed nodes rejoin the
// configuration — they kept receiving as observers, so the join is a
// permission grant plus a summary-row refresh. Crashed nodes stay dead.
func (r *runner) healAll() {
	for i := 0; i < r.plan.Nodes; i++ {
		r.resume(i)
	}
	r.fab.HealAll()
	for i := 0; i < r.plan.Nodes; i++ {
		if r.left[i] {
			r.reconfig(i, true)
		}
	}
	r.fold(int64(r.eng.Now()), -1) // mark the heal in the trace
}

// issueBatch issues up to BatchSize updates from random live origins.
func (r *runner) issueBatch() {
	if r.v.Issued >= r.plan.Ops {
		return
	}
	r.batches++
	if r.opts.QueryMix > 0 && r.batches%r.opts.QueryMix == 0 {
		r.issueQuery()
	}
	ups := r.cls.UpdateMethods()
	for i := 0; i < r.opts.BatchSize && r.v.Issued < r.plan.Ops; i++ {
		live := r.issuable()
		if len(live) == 0 {
			return
		}
		origin := spec.ProcID(live[r.rng.Intn(len(live))])
		u := ups[r.rng.Intn(len(ups))]
		call := r.cls.Gen.Call(r.rng, u)
		fixTags(&call, origin, uint64(r.v.Issued)+1)
		r.invoke(origin, u, call.Args, nil)
	}
}

// invoke issues one update, maintaining the probe bookkeeping. onAck, when
// non-nil, runs after the bookkeeping when the call resolves (the session
// clients hook it to stamp their evidence at ack time).
func (r *runner) invoke(origin spec.ProcID, u spec.MethodID, args spec.Args, onAck func(error)) {
	r.v.Issued++
	r.cCalls.Inc()
	r.pending[origin]++
	r.cluster.Replica(origin).Invoke(u, args, func(_ any, err error) {
		r.pending[origin]--
		code := int64(0)
		switch {
		case err == nil:
			r.acked[origin][u]++
			r.v.Acked++
		case errors.Is(err, core.ErrImpermissible):
			r.v.Rejected++
			code = 1
		case errors.Is(err, core.ErrDown):
			code = 2
		default:
			code = 3
			r.violate("invoke-error", fmt.Sprintf("p%d %s: %v", origin, r.cls.Methods[u].Name, err))
		}
		r.fold(int64(r.eng.Now()), int64(origin), int64(u), code)
		if onAck != nil {
			onAck(err)
		}
	})
}

// issueQuery evaluates one random query at a random live origin. Results
// land in the trace (for the conformance checker to explain), not in the
// verdict: a query failing with ErrDown mid-fault is expected behavior.
func (r *runner) issueQuery() {
	qs := r.cls.QueryMethods()
	if len(qs) == 0 {
		return
	}
	live := r.issuable()
	if len(live) == 0 {
		return
	}
	origin := spec.ProcID(live[r.rng.Intn(len(live))])
	q := qs[r.rng.Intn(len(qs))]
	call := r.cls.Gen.Call(r.rng, q)
	fresh := r.rng.Intn(2) == 0
	done := func(_ any, err error) {
		code := int64(0)
		if err != nil {
			code = 1
		}
		r.fold(int64(r.eng.Now()), int64(origin), int64(q), 16+code)
	}
	if fresh {
		r.cluster.Replica(origin).InvokeFresh(q, call.Args, done)
	} else {
		r.cluster.Replica(origin).Invoke(q, call.Args, done)
	}
}

// issuable lists the nodes the workload may target: up, and in (or not
// yet leaving) the configuration — a departed node acks writes locally
// that no member will ever accept.
func (r *runner) issuable() []int {
	var live []int
	for n := 0; n < r.plan.Nodes; n++ {
		if !r.down[n] && !r.crashed[n] && !r.leaving[n] {
			live = append(live, n)
		}
	}
	return live
}

// fixTags rewrites tag-bearing arguments to be globally unique, as the
// class generators expect the driver to do.
func fixTags(call *spec.Call, p spec.ProcID, salt uint64) {
	switch {
	case call.Method == crdt.ORSetAdd && len(call.Args.I) >= 2:
		call.Args.I[1] = crdt.Tag(p, salt)
	case call.Method == crdt.CartAdd && len(call.Args.I) >= 3:
		call.Args.I[2] = crdt.Tag(p, salt)
	}
}

// correct reports whether node n should satisfy the end-state probes: it
// never crashed and is not (still) suspended.
func (r *runner) correct(n int) bool { return !r.down[n] && !r.crashed[n] }

// pendingCorrect counts in-flight calls whose origin is correct; calls
// stranded on a dead origin can never complete and are exempt.
func (r *runner) pendingCorrect() int {
	total := 0
	for n, c := range r.pending {
		if r.correct(n) {
			total += c
		}
	}
	return total
}

// replicated reports whether every correct replica has applied at least
// every acknowledged update from every correct origin.
func (r *runner) replicated() bool {
	for n := 0; n < r.plan.Nodes; n++ {
		if !r.correct(n) {
			continue
		}
		applied := r.cluster.Replica(spec.ProcID(n)).Applied()
		for p := 0; p < r.plan.Nodes; p++ {
			if !r.correct(p) {
				continue
			}
			for u, want := range r.acked[p] {
				if applied.Get(spec.ProcID(p), spec.MethodID(u)) < want {
					return false
				}
			}
		}
	}
	return true
}

// drain runs the simulation until quiescence — no in-flight calls from
// correct origins and full replication — or the drain budget expires.
func (r *runner) drain() bool {
	deadline := r.eng.Now() + sim.Time(r.opts.DrainDeadline)
	for r.eng.Now() < deadline {
		r.eng.RunFor(200 * sim.Microsecond)
		if r.pendingCorrect() == 0 && r.replicated() {
			return true
		}
	}
	return false
}

// probeConvergence checks all correct replicas reached identical states.
func (r *runner) probeConvergence() {
	ref := -1
	var refState spec.State
	for n := 0; n < r.plan.Nodes; n++ {
		if !r.correct(n) {
			continue
		}
		st := r.cluster.Replica(spec.ProcID(n)).CurrentState()
		if refState == nil {
			ref, refState = n, st
			continue
		}
		if !refState.Equal(st) {
			r.violate("convergence", fmt.Sprintf("replicas p%d and p%d hold different states after heal+drain", ref, n))
		}
	}
}

// probeExactlyOnce checks the applied-call counts: every acknowledged
// update from a correct origin is applied exactly once at every correct
// replica — fewer is a lost update, more is a duplicate delivery.
func (r *runner) probeExactlyOnce() {
	for n := 0; n < r.plan.Nodes; n++ {
		if !r.correct(n) {
			continue
		}
		applied := r.cluster.Replica(spec.ProcID(n)).Applied()
		for p := 0; p < r.plan.Nodes; p++ {
			if !r.correct(p) {
				continue
			}
			for u, want := range r.acked[p] {
				got := applied.Get(spec.ProcID(p), spec.MethodID(u))
				switch {
				case got < want:
					r.violate("lost-update", fmt.Sprintf("p%d applied %d of %d acked %s calls from p%d",
						n, got, want, r.cls.Methods[u].Name, p))
				case got > want:
					r.violate("duplicate", fmt.Sprintf("p%d applied %d %s calls from p%d but only %d were acked",
						n, got, r.cls.Methods[u].Name, p, want))
				}
			}
		}
	}
}

// probeIntegrity checks the class invariant on every live replica's
// current state. Transient violations during the run are real violations:
// integrity must hold at every queried point (§3, integrity).
func (r *runner) probeIntegrity(final bool) {
	if r.cls.TrivialInvariant || r.cls.Invariant == nil {
		return
	}
	for n := 0; n < r.plan.Nodes; n++ {
		if r.down[n] || r.crashed[n] {
			continue
		}
		if !r.cls.Invariant(r.cluster.Replica(spec.ProcID(n)).CurrentState()) {
			when := "during run"
			if final {
				when = "after heal+drain"
			}
			r.violate("integrity", fmt.Sprintf("invariant violated at p%d (%s)", n, when))
			return // one report per probe tick is enough
		}
	}
}

func (r *runner) violate(probe, detail string) {
	r.cViolations.Inc()
	if len(r.v.Violations) >= maxViolations {
		return
	}
	r.v.Violations = append(r.v.Violations, Violation{At: r.eng.Now(), Probe: probe, Detail: detail})
}

// --- trace hashing ---------------------------------------------------------

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fold mixes vals into the verdict's FNV-1a trace hash. Every nemesis
// action and call completion folds (with its virtual timestamp), so two
// runs with the same hash took the same schedule through the same trace.
func (r *runner) fold(vals ...int64) { r.v.fold(vals...) }

func (v *Verdict) fold(vals ...int64) {
	h := v.TraceHash
	if h == 0 {
		h = fnvOffset
	}
	for _, v := range vals {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= fnvPrime
			u >>= 8
		}
	}
	v.TraceHash = h
}

func kindIndex(k Kind) int {
	switch k {
	case KindSuspend:
		return 1
	case KindResume:
		return 2
	case KindCrash:
		return 3
	case KindPartition:
		return 4
	case KindHeal:
		return 5
	case KindDelay:
		return 6
	case KindLeaderKill:
		return 7
	case KindTorn:
		return 8
	case KindTornHeal:
		return 9
	case KindLeave:
		return 10
	case KindJoin:
		return 11
	}
	return 0
}

// FormatViolations renders a verdict's violations, one per line.
func FormatViolations(v *Verdict) string {
	var b strings.Builder
	for _, viol := range v.Violations {
		fmt.Fprintf(&b, "  %s\n", viol)
	}
	return b.String()
}
