package chaos

import (
	"reflect"
	"testing"

	"hamband/internal/sim"
)

// reconfigPlan is the canonical membership round-trip: node 3 leaves a
// third of the way through the workload and rejoins at two thirds, with
// two client sessions running throughout.
func reconfigPlan(class string, seed int64) Plan {
	return Plan{
		Class: class, Nodes: 4, Ops: 120, Seed: seed, Sessions: 2,
		Events: []Event{
			{At: sim.Time(300 * sim.Microsecond), Kind: KindLeave, Node: 3},
			{At: sim.Time(900 * sim.Microsecond), Kind: KindJoin, Node: 3},
		},
	}
}

func TestReconfigRoundTripConverges(t *testing.T) {
	for _, class := range []string{"counter", "orset", "bankmap"} {
		v := mustRun(t, reconfigPlan(class, 31), Options{})
		assertPassed(t, v)
		if v.Reconfigs != 2 || v.FinalEpoch != 2 {
			t.Fatalf("%s: reconfigs=%d epoch=%d, want 2/2 (leave then join committed)",
				class, v.Reconfigs, v.FinalEpoch)
		}
	}
}

// TestReconfigLeaderKillConverges is the acceptance scenario: the leader
// of the conflicting group is killed in the middle of an epoch transition
// (after the leave event fires, before the commit settles). Post-heal the
// cluster must converge with exactly-once acknowledged updates — the
// probes in assertPassed check both.
func TestReconfigLeaderKillConverges(t *testing.T) {
	p := Plan{
		Class: "account", Nodes: 4, Ops: 120, Seed: 33, Sessions: 2,
		Events: []Event{
			{At: sim.Time(300 * sim.Microsecond), Kind: KindLeave, Node: 3},
			// reconfigSettle delays the actual Leave to 400 µs; the kill at
			// 410 µs lands while the epoch change is in flight.
			{At: sim.Time(410 * sim.Microsecond), Kind: KindLeaderKill, Group: 0},
			{At: sim.Time(900 * sim.Microsecond), Kind: KindJoin, Node: 3},
		},
	}
	v := mustRun(t, p, Options{})
	assertPassed(t, v)
	if v.FinalEpoch < 2 {
		t.Fatalf("final epoch = %d, want >= 2 (leave and join committed)", v.FinalEpoch)
	}
}

// TestShrinkKeepsReconfigPairs is the satellite-1 regression: shrinking a
// failing plan whose only real fault is a mid-epoch leader kill must treat
// the leave/join round-trip as a unit — no accepted candidate may strand a
// join without its leave — and still reach the minimal one-event plan.
func TestShrinkKeepsReconfigPairs(t *testing.T) {
	opts := Options{DrainDeadline: 10 * sim.Millisecond}
	p := negativePlan(true) // leaderkill with recovery disabled: always fails
	p.Events = append(p.Events,
		Event{At: sim.Time(100 * sim.Microsecond), Kind: KindLeave, Node: 2},
		Event{At: sim.Time(150 * sim.Microsecond), Kind: KindPartition, A: 1, B: 3},
		Event{At: sim.Time(400 * sim.Microsecond), Kind: KindHeal, A: 1, B: 3},
		Event{At: sim.Time(600 * sim.Microsecond), Kind: KindJoin, Node: 2},
	)
	if v := mustRun(t, p, opts); v.Passed {
		t.Fatal("padded negative plan unexpectedly passed")
	}
	min := Shrink(p, func(cand Plan) bool {
		if err := cand.Validate(); err != nil {
			t.Errorf("shrink proposed an invalid candidate (orphaned reconfiguration half?): %v", err)
			return false
		}
		v, err := Run(cand, opts)
		return err == nil && !v.Passed
	})
	if len(min.Events) != 1 || min.Events[0].Kind != KindLeaderKill {
		t.Fatalf("shrink left %d events (%v), want just the leaderkill", len(min.Events), min.Events)
	}
}

// TestDropCandidatePairs pins the pair semantics directly: dropping either
// half of a leave/join pair drops both, other events drop alone.
func TestDropCandidatePairs(t *testing.T) {
	p := Plan{
		Class: "counter", Nodes: 4, Ops: 10, Seed: 1,
		Events: []Event{
			{At: 100, Kind: KindLeave, Node: 2},
			{At: 200, Kind: KindSuspend, Node: 1},
			{At: 300, Kind: KindJoin, Node: 2},
		},
	}
	for _, i := range []int{0, 2} { // leave or join: the pair goes together
		q := p.dropCandidate(i)
		if len(q.Events) != 1 || q.Events[0].Kind != KindSuspend {
			t.Fatalf("dropCandidate(%d) = %v, want just the suspend", i, q.Events)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("pair drop left an invalid plan: %v", err)
		}
	}
	if q := p.dropCandidate(1); len(q.Events) != 2 {
		t.Fatalf("dropCandidate(1) = %v, want the leave/join pair intact", q.Events)
	}
}

func TestGenerateReconfigDeterministic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a := GenerateReconfig("orset", 4, 100, seed, 2)
		b := GenerateReconfig("orset", 4, 100, seed, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: GenerateReconfig not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid plan: %v", seed, err)
		}
		leaves, joins := 0, 0
		for _, e := range a.Events {
			switch e.Kind {
			case KindLeave:
				leaves++
			case KindJoin:
				joins++
			}
		}
		if leaves != 1 || joins != 1 || a.Sessions != 2 {
			t.Fatalf("seed %d: leaves=%d joins=%d sessions=%d, want 1/1/2", seed, leaves, joins, a.Sessions)
		}
	}
}

// TestReconfigValidation pins the plan-shape rules for membership events.
func TestReconfigValidation(t *testing.T) {
	bad := []Plan{
		{Class: "counter", Nodes: 4, Ops: 10, Events: []Event{{Kind: KindJoin, Node: 1}}},                                     // orphan join
		{Class: "counter", Nodes: 4, Ops: 10, Events: []Event{{Kind: KindLeave, Node: 1}, {At: 1, Kind: KindLeave, Node: 1}}}, // double leave
		{Class: "counter", Nodes: 4, Ops: 10, Events: []Event{{Kind: KindLeave, Node: 7}}},                                    // out of range
		{Class: "counter", Nodes: 4, Ops: 10, ShardMix: 2, Events: []Event{{Kind: KindLeave, Node: 1}}},                       // sharded
		{Class: "counter", Nodes: 4, Ops: 10, MutateStaleReads: true},                                                         // mutation without sessions
		{Class: "counter", Nodes: 4, Ops: 10, Sessions: 99},                                                                   // too many sessions
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated but is invalid", i)
		}
	}
	good := Plan{Class: "counter", Nodes: 4, Ops: 10, Sessions: 2,
		Events: []Event{{Kind: KindLeave, Node: 1}, {At: 1, Kind: KindJoin, Node: 1}, {At: 2, Kind: KindLeave, Node: 1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("leave/join/leave cycle rejected: %v", err)
	}
}
