package chaos

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzPlanJSON fuzzes the fault-plan JSON reader: arbitrary input must
// never panic, and any input that parses into a valid plan must round-trip
// through encode/decode unchanged (plans are replayable bug reports, so a
// lossy serialization would corrupt counterexamples).
func FuzzPlanJSON(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		var buf bytes.Buffer
		p := Generate("bankmap", 4, 60, seed)
		p.NoFinalHeal = seed%2 == 0
		p.DisableRecovery = seed%3 == 0
		p.MutateApplyOrder = seed%4 == 0
		if err := p.WriteJSON(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"class":"counter","nodes":2,"ops":0,"seed":-1,"events":null}`))
	f.Add([]byte(`{"class":"counter","nodes":2,"events":[{"at":-1,"kind":"suspend"}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("valid plan failed to encode: %v", err)
		}
		q, err := ReadPlan(&buf)
		if err != nil {
			t.Fatalf("re-reading an encoded valid plan failed: %v", err)
		}
		// Normalize the one asymmetry JSON allows: an empty slice encodes
		// as [] but absent/null decodes as nil.
		if len(p.Events) == 0 {
			p.Events = nil
		}
		if len(q.Events) == 0 {
			q.Events = nil
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round-trip changed the plan:\n in: %+v\nout: %+v", p, q)
		}
	})
}
