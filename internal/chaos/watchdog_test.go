package chaos

import (
	"reflect"
	"testing"

	"hamband/internal/health"
	"hamband/internal/sim"
)

// A fault-free plan must produce zero watchdog firings: the rules are
// calibrated so a healthy cluster under full workload never looks sick.
func TestWatchdogNoFaultClean(t *testing.T) {
	for _, class := range []string{"bankmap", "orset"} {
		v := mustRun(t, Plan{Class: class, Nodes: 4, Ops: 200, Seed: 11}, Options{})
		assertPassed(t, v)
		if len(v.Anomalies) != 0 {
			t.Fatalf("%s: fault-free run produced %d watchdog firings, first: %+v",
				class, len(v.Anomalies), v.Anomalies[0])
		}
	}
}

// A sharded fault-free plan must also stay clean — in particular the
// budget-low rule must treat the store's exact-admission arenas (0%
// headroom from the first snapshot) as steady state, and a balanced
// workload must not trip hot-shard.
func TestWatchdogNoFaultCleanSharded(t *testing.T) {
	v := mustRun(t, Plan{Class: "bankmap", Nodes: 4, Ops: 240, Seed: 13, ShardMix: 3}, Options{})
	assertPassed(t, v)
	if len(v.Anomalies) != 0 {
		t.Fatalf("fault-free sharded run produced %d watchdog firings, first: %+v",
			len(v.Anomalies), v.Anomalies[0])
	}
}

// suspendPlan knocks node 3 out for most of the run: long enough for the
// failure detector to suspect it and for its applied watermark to fall
// behind by well over the lag floor.
func suspendPlan() Plan {
	return Plan{
		Class: "bankmap", Nodes: 4, Ops: 400, Seed: 5,
		Events: []Event{
			{At: sim.Time(300 * sim.Microsecond), Kind: KindSuspend, Node: 3},
			{At: sim.Time(4500 * sim.Microsecond), Kind: KindResume, Node: 3},
		},
	}
}

// An injected suspension must be observed: the watchdog fires at least one
// rule the fault predicts, every firing is classified expected (the run
// passes), and the coverage table marks the fault covered.
func TestWatchdogExpectedFiring(t *testing.T) {
	v := mustRun(t, suspendPlan(), Options{})
	assertPassed(t, v)
	if len(v.Anomalies) == 0 {
		t.Fatal("suspension ran unobserved: no watchdog firings")
	}
	if len(v.Unexpected) != 0 {
		t.Fatalf("expected-only firings wanted, got unexpected: %+v", v.Unexpected)
	}
	exp := expectedRules(v.Plan)
	for _, f := range v.Anomalies {
		if !exp[f.Rule] {
			t.Fatalf("firing %+v not in the plan's expected set %v", f, exp)
		}
	}

	cov := CoverFaults(v)
	if len(cov) != 1 { // resume is a healing event: no coverage row
		t.Fatalf("want 1 coverage row (suspend only), got %d: %+v", len(cov), cov)
	}
	if !cov[0].Covered || cov[0].Firing == nil {
		t.Fatalf("suspend fault not covered: %+v", cov[0])
	}
	if cov[0].Firing.At < cov[0].Event.At {
		t.Fatalf("covering firing at %v predates the fault at %v", cov[0].Firing.At, cov[0].Event.At)
	}
}

// Watchdog output is part of the deterministic verdict: equal plans give
// equal firing lists, and the trace hash is unchanged by metrics/tracing
// (which route the firings into counters and trace events).
func TestWatchdogDeterministic(t *testing.T) {
	a := mustRun(t, suspendPlan(), Options{})
	b := mustRun(t, suspendPlan(), Options{EnableMetrics: true, FlightWindow: 256})
	if a.TraceHash != b.TraceHash {
		t.Fatalf("watchdog observation perturbed the schedule: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if !reflect.DeepEqual(a.Anomalies, b.Anomalies) {
		t.Fatalf("firings differ across identical runs:\n%+v\n%+v", a.Anomalies, b.Anomalies)
	}
	if b.Metrics.Counter("health.firings").Value() != uint64(len(b.Anomalies)) {
		t.Fatalf("health.firings counter %d != %d firings",
			b.Metrics.Counter("health.firings").Value(), len(b.Anomalies))
	}
	if len(b.Anomalies) > 0 && len(b.FlightDump) == 0 {
		t.Fatal("first firing did not capture a flight-recorder dump")
	}
}

// The full generated corpus must be watchdog-clean: every firing across
// 20 random fault plans per class is predicted by an injected fault.
func TestWatchdogCorpusClean(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	for _, class := range []string{"bankmap", "orset"} {
		for seed := int64(0); seed < 20; seed++ {
			v := mustRun(t, Generate(class, 4, 120, seed), Options{})
			if len(v.Unexpected) != 0 {
				t.Errorf("class=%s seed=%d: %d unexpected firings, first: %+v",
					class, seed, len(v.Unexpected), v.Unexpected[0])
			}
		}
	}
}

// kindRules must cover every fault kind; a new nemesis event without a
// watchdog mapping would silently classify all its symptoms as unexpected.
func TestKindRulesCoverage(t *testing.T) {
	faults := []Kind{KindSuspend, KindCrash, KindPartition, KindDelay, KindTorn, KindLeaderKill, KindLeave, KindJoin}
	for _, k := range faults {
		if len(kindRules(k)) == 0 {
			t.Errorf("fault kind %q predicts no watchdog rules", k)
		}
	}
	heals := []Kind{KindResume, KindHeal, KindTornHeal}
	for _, k := range heals {
		if len(kindRules(k)) != 0 {
			t.Errorf("healing kind %q should predict nothing, got %v", k, kindRules(k))
		}
	}
	// Budget-low must never be expected: no chaos fault exhausts an arena.
	for _, k := range faults {
		for _, r := range kindRules(k) {
			if r == health.RuleBudgetLow {
				t.Errorf("fault kind %q expects budget-low", k)
			}
		}
	}
}
