package chaos

import (
	"bytes"
	"reflect"
	"testing"

	"hamband/internal/sim"
)

// partitionHealPlan cuts the cluster 2|2 mid-run and heals before the
// workload ends — the canonical satellite scenario.
func partitionHealPlan(class string, seed int64) Plan {
	cut := func(at sim.Time, kind Kind) []Event {
		var evs []Event
		for _, link := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
			evs = append(evs, Event{At: at, Kind: kind, A: link[0], B: link[1]})
		}
		return evs
	}
	p := Plan{Class: class, Nodes: 4, Ops: 120, Seed: seed}
	p.Events = append(p.Events, cut(sim.Time(200*sim.Microsecond), KindPartition)...)
	p.Events = append(p.Events, cut(sim.Time(900*sim.Microsecond), KindHeal)...)
	return p
}

func mustRun(t *testing.T, p Plan, opts Options) *Verdict {
	t.Helper()
	v, err := Run(p, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v
}

// assertPassed fails the test with the verdict's violations, dumping the
// plan for replay.
func assertPassed(t *testing.T, v *Verdict) {
	t.Helper()
	if v.Passed {
		return
	}
	if path, err := DumpPlan(t.TempDir(), v.Plan); err == nil {
		t.Logf("failing plan dumped to %s", path)
	}
	t.Fatalf("plan failed (class=%s seed=%d):\n%s", v.Plan.Class, v.Plan.Seed, FormatViolations(v))
}

// --- determinism -----------------------------------------------------------

func TestGenerateIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := Generate("orset", 4, 100, seed)
		b := Generate("orset", 4, 100, seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid plan: %v", seed, err)
		}
	}
}

func TestRunIsReproducible(t *testing.T) {
	plan := Generate("bankmap", 4, 100, 7)
	a := mustRun(t, plan, Options{})
	b := mustRun(t, plan, Options{})
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hashes differ across identical runs: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
	if a.Passed != b.Passed || a.Issued != b.Issued || a.Acked != b.Acked ||
		a.Makespan != b.Makespan || !reflect.DeepEqual(a.Violations, b.Violations) {
		t.Fatalf("verdicts differ across identical runs:\n%s\n%s", a.Summary(), b.Summary())
	}
	// Different seeds must explore different schedules.
	c := mustRun(t, Generate("bankmap", 4, 100, 8), Options{})
	if c.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced identical trace hashes")
	}
}

// --- plan JSON -------------------------------------------------------------

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Generate("counter", 4, 80, 3)
	p.NoFinalHeal = true
	p.DisableRecovery = true
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	q, err := ReadPlan(&buf)
	if err != nil {
		t.Fatalf("ReadPlan: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip changed the plan:\n%+v\n%+v", p, q)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Class: "nope", Nodes: 4, Ops: 10},
		{Class: "counter", Nodes: 1, Ops: 10},
		{Class: "counter", Nodes: 4, Ops: 10, Events: []Event{{Kind: "warp"}}},
		{Class: "counter", Nodes: 4, Ops: 10, Events: []Event{{Kind: KindSuspend, Node: 9}}},
		{Class: "counter", Nodes: 4, Ops: 10, Events: []Event{{Kind: KindPartition, A: 2, B: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated but is invalid", i)
		}
	}
}

// --- satellite: partition-then-heal convergence ----------------------------

func TestPartitionHealConvergenceCounter(t *testing.T) {
	assertPassed(t, mustRun(t, partitionHealPlan("counter", 11), Options{}))
}

func TestPartitionHealConvergenceORSet(t *testing.T) {
	assertPassed(t, mustRun(t, partitionHealPlan("orset", 12), Options{}))
}

func TestPartitionHealConvergenceBankMap(t *testing.T) {
	assertPassed(t, mustRun(t, partitionHealPlan("bankmap", 13), Options{}))
}

// --- randomized exploration ------------------------------------------------

// TestRandomizedPlans is the acceptance sweep: 27 seed-generated fault
// plans across three data-type classes (reducible counter, irreducible
// orset, conflicting+dependent bankmap) must all pass every probe. Failing
// plans are shrunk and dumped for replay by Explore itself.
func TestRandomizedPlans(t *testing.T) {
	var out bytes.Buffer
	failures, dumped := Explore(&out, ExploreOptions{
		Seed:    1000,
		Plans:   27,
		Classes: []string{"counter", "orset", "bankmap"},
		DumpDir: t.TempDir(),
	})
	if failures != 0 {
		t.Fatalf("%d randomized plans failed (reproducers: %v):\n%s", failures, dumped, out.String())
	}
	if testing.Verbose() {
		t.Log("\n" + out.String())
	}
}

// --- negative control ------------------------------------------------------

// negativePlan kills the conflicting-group leader and never heals: with
// failure handling disabled the cluster cannot elect a successor, so
// withdraws from correct nodes can never be ordered.
func negativePlan(disableRecovery bool) Plan {
	return Plan{
		Class: "account", Nodes: 4, Ops: 80, Seed: 5,
		NoFinalHeal:     true,
		DisableRecovery: disableRecovery,
		Events: []Event{
			{At: sim.Time(200 * sim.Microsecond), Kind: KindLeaderKill, Group: 0},
		},
	}
}

// TestNegativeControlCaught proves the probes have teeth: an intentionally
// broken configuration (recovery disabled) is caught, and the identical
// fault schedule passes once recovery is enabled.
func TestNegativeControlCaught(t *testing.T) {
	opts := Options{DrainDeadline: 10 * sim.Millisecond}

	broken := mustRun(t, negativePlan(true), opts)
	if broken.Passed {
		t.Fatal("recovery-disabled cluster passed a leader-kill plan — probes are blind")
	}
	found := false
	for _, v := range broken.Violations {
		if v.Probe == "quiescence" {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a quiescence violation, got:\n%s", FormatViolations(broken))
	}

	healthy := mustRun(t, negativePlan(false), opts)
	assertPassed(t, healthy)
}

// --- shrinking -------------------------------------------------------------

// TestShrinkMinimizes pads the negative-control plan with irrelevant noise
// events and checks greedy shrinking strips them all, leaving the single
// event that causes the failure.
func TestShrinkMinimizes(t *testing.T) {
	opts := Options{DrainDeadline: 10 * sim.Millisecond}
	p := negativePlan(true)
	p.Events = append(p.Events,
		Event{At: sim.Time(100 * sim.Microsecond), Kind: KindPartition, A: 1, B: 2},
		Event{At: sim.Time(400 * sim.Microsecond), Kind: KindHeal, A: 1, B: 2},
		Event{At: sim.Time(300 * sim.Microsecond), Kind: KindDelay, A: 2, B: 3, Extra: 4 * sim.Microsecond},
	)
	if v := mustRun(t, p, opts); v.Passed {
		t.Fatal("padded negative plan unexpectedly passed")
	}
	min := Shrink(p, func(cand Plan) bool {
		v, err := Run(cand, opts)
		return err == nil && !v.Passed
	})
	if len(min.Events) != 1 || min.Events[0].Kind != KindLeaderKill {
		t.Fatalf("shrink left %d events (%v), want just the leaderkill", len(min.Events), min.Events)
	}
	if v := mustRun(t, min, opts); v.Passed {
		t.Fatal("shrunk plan no longer fails")
	}
}
