package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"hamband/internal/core"
	"hamband/internal/health"
	"hamband/internal/heartbeat"
	"hamband/internal/metrics"
	"hamband/internal/rdma"
	"hamband/internal/sim"
	"hamband/internal/spec"
	"hamband/internal/store"
	"hamband/internal/trace"
)

// shardRunner executes a ShardMix plan: one node set hosting ShardMix
// same-class shards behind a keyed store, with the workload spread across
// shards and every correctness probe evaluated per shard. Node and link
// faults hit the shared substrate (a node hosts every shard), so the run's
// central question is isolation: does a fault that stalls one shard leave
// its siblings acking, draining and converging?
type shardRunner struct {
	plan Plan
	opts Options
	cls  *spec.Class
	an   *spec.Analysis
	eng  *sim.Engine
	fab  *rdma.Fabric
	st   *store.Store
	keys []string
	rng  *rand.Rand

	down    []bool
	crashed []bool

	acked   [][][]uint32 // acked[shard][p][u]
	pending [][]int      // pending[shard][origin]
	batches int
	v       *Verdict
	wd      *health.Watchdog

	cEvents, cCalls, cViolations *metrics.Counter
}

// runSharded is Run's ShardMix ≥ 2 path.
func runSharded(p Plan, opts Options) (*Verdict, error) {
	opts = opts.withDefaults()

	cls := classRegistry[p.Class]()
	an := spec.MustAnalyze(cls)
	eng := sim.NewEngine(p.Seed)
	fab := rdma.NewFabric(eng, p.Nodes, rdma.DefaultLatency())

	sopts := store.DefaultOptions()
	sopts.Core.Heartbeat = heartbeat.Config{
		BeatPeriod:     5 * sim.Microsecond,
		CheckPeriod:    10 * sim.Microsecond,
		Threshold:      3,
		TrustThreshold: 2,
	}
	sopts.Core.CheckIntegrity = false
	sopts.Core.DisableFailureHandling = p.DisableRecovery
	sopts.Core.MutateApplyOrder = p.MutateApplyOrder
	if p.FullSummaries {
		sopts.Core.DeltaSummaries = false
		sopts.Core.DeltaWire = false
	}
	if p.AnchorInterval > 0 {
		sopts.Core.AnchorInterval = p.AnchorInterval
	}
	sopts.CrossWire = p.CrossWireShards
	// Exact admission: the budget is sized to the plan's shard count, so a
	// footprint-accounting regression surfaces here as an Open error.
	sopts.MemoryBudget = p.ShardMix * store.Footprint(an, p.Nodes, sopts.Core)

	r := &shardRunner{
		plan: p, opts: opts, cls: cls, an: an, eng: eng, fab: fab,
		rng:     rand.New(rand.NewSource(p.Seed ^ 0x5DEECE66D)),
		down:    make([]bool, p.Nodes),
		crashed: make([]bool, p.Nodes),
		v:       &Verdict{Plan: p},
	}
	if opts.EnableMetrics {
		reg := metrics.New(eng)
		sopts.Core.Metrics = reg
		fab.EnableMetrics(reg)
		r.v.Metrics = reg
		r.cEvents = reg.Counter("chaos.events")
		r.cCalls = reg.Counter("chaos.calls")
		r.cViolations = reg.Counter("chaos.violations")
	}
	if opts.FlightWindow > 0 {
		tr := trace.NewFlightRecorder(eng, opts.FlightWindow)
		sopts.Tracer = tr
		r.v.Trace = tr
	} else if opts.TraceLimit > 0 {
		tr := trace.New(eng, opts.TraceLimit)
		sopts.Tracer = tr
		r.v.Trace = tr
	}

	r.st = store.New(fab, sopts)
	// Same watchdog wiring as the single-object runner: read-only snapshot
	// collection on the probe cadence, firings cross-checked against the
	// fault plan at the end of the run. Sharded snapshots additionally feed
	// the hot-shard and budget-low rules.
	r.wd = health.NewWatchdog(health.Config{
		Metrics: sopts.Core.Metrics,
		Tracer:  sopts.Tracer,
		OnFirstFiring: func(health.Firing) {
			if r.v.Trace != nil {
				r.v.FlightDump = r.v.Trace.Events()
			}
		},
	})
	for i := 0; i < p.ShardMix; i++ {
		key := fmt.Sprintf("s%02d", i)
		if _, err := r.st.Open(key, an, store.ShardOptions{}); err != nil {
			return nil, fmt.Errorf("chaos: opening shard %s: %w", key, err)
		}
		r.keys = append(r.keys, key)
		r.acked = append(r.acked, makeAckMatrix(p.Nodes, len(cls.Methods)))
		r.pending = append(r.pending, make([]int, p.Nodes))
	}
	r.run()
	return r.v, nil
}

func makeAckMatrix(nodes, methods int) [][]uint32 {
	m := make([][]uint32, nodes)
	for i := range m {
		m[i] = make([]uint32, methods)
	}
	return m
}

func (r *shardRunner) run() {
	for _, e := range r.plan.Events {
		e := e
		r.eng.At(e.At, func() { r.apply(e) })
	}
	issueTick := r.eng.NewTicker(r.opts.IssuePeriod, r.issueBatch)
	probeTick := r.eng.NewTicker(r.opts.ProbePeriod, func() {
		r.probeIntegrity(false)
		r.wd.Observe(health.CollectStore(r.eng.Now(), r.st))
	})

	horizon := sim.Time(sim.Duration(r.plan.Ops/r.opts.BatchSize+2) * r.opts.IssuePeriod)
	for _, e := range r.plan.Events {
		if e.At >= horizon {
			horizon = e.At + 1
		}
	}
	r.eng.RunUntil(horizon)
	issueTick.Cancel()

	if !r.plan.NoFinalHeal {
		r.healAll()
	}
	r.v.Drained = r.drain()
	probeTick.Cancel()

	// Per-shard final probes: shards that drained must converge and hold
	// exactly-once; shards that did not are quiescence violations naming
	// the shard, so isolation failures read directly off the verdict.
	stalled := r.stalledShards()
	if len(stalled) > 0 {
		r.violate("quiescence", fmt.Sprintf("shards [%s] not quiescent after %v drain: in-flight calls or incomplete replication from correct origins",
			strings.Join(stalled, " "), r.opts.DrainDeadline))
	}
	for si := range r.keys {
		if r.shardQuiescent(si) {
			r.probeConvergence(si)
			r.probeExactlyOnce(si)
		}
	}
	r.probeIntegrity(true)
	classifyFirings(r.v, r.wd, r.violate)

	r.v.Makespan = sim.Duration(r.eng.Now())
	r.v.Passed = len(r.v.Violations) == 0
	r.v.Correct = make([]bool, r.plan.Nodes)
	for n := 0; n < r.plan.Nodes; n++ {
		r.v.Correct[n] = r.correct(n)
	}
	r.v.ShardAcked = make([]int, len(r.keys))
	for si, m := range r.acked {
		for _, row := range m {
			for _, c := range row {
				r.v.ShardAcked[si] += int(c)
			}
		}
	}
	r.v.fold(int64(r.eng.Now()), int64(r.v.Issued), int64(r.v.Acked), int64(len(r.v.Violations)))
	for _, a := range r.v.ShardAcked {
		r.v.fold(int64(a))
	}
	r.st.Stop()
}

func (r *shardRunner) apply(e Event) {
	r.cEvents.Inc()
	switch e.Kind {
	case KindSuspend:
		r.suspend(e.Node)
	case KindResume:
		r.resume(e.Node)
	case KindCrash:
		if !r.crashed[e.Node] {
			r.crashed[e.Node] = true
			r.fab.Node(rdma.NodeID(e.Node)).Crash()
		}
	case KindPartition:
		r.fab.Partition(rdma.NodeID(e.A), rdma.NodeID(e.B))
	case KindHeal:
		r.fab.Heal(rdma.NodeID(e.A), rdma.NodeID(e.B))
	case KindDelay:
		r.fab.SetDelay(rdma.NodeID(e.A), rdma.NodeID(e.B), e.Extra, e.Jitter)
	case KindTorn:
		tear := e.Extra
		if tear <= 0 {
			tear = DefaultTear
		}
		r.fab.SetTorn(rdma.NodeID(e.A), rdma.NodeID(e.B), tear, e.Jitter)
	case KindTornHeal:
		r.fab.SetTorn(rdma.NodeID(e.A), rdma.NodeID(e.B), 0, 0)
	case KindLeaderKill:
		r.leaderKill(e.Group)
	}
	r.v.fold(int64(r.eng.Now()), int64(kindIndex(e.Kind)), int64(e.Node), int64(e.A), int64(e.B))
}

// suspend stops node n's process — every shard it hosts at once; the
// shared failure domain's beater is the node's single heartbeat thread.
func (r *shardRunner) suspend(n int) {
	if r.down[n] || r.crashed[n] {
		return
	}
	r.down[n] = true
	if fd := r.st.FailureDomain(); fd != nil {
		fd.Beater(n).Suspend()
	}
	r.fab.Node(rdma.NodeID(n)).Suspend()
}

func (r *shardRunner) resume(n int) {
	if !r.down[n] || r.crashed[n] {
		return
	}
	r.down[n] = false
	if fd := r.st.FailureDomain(); fd != nil {
		fd.Beater(n).Resume()
	}
	r.fab.Node(rdma.NodeID(n)).Resume()
}

// leaderKill routes group g to shard g mod ShardMix and suspends that
// shard's current leader — a fault aimed at exactly one shard's consensus,
// the probe for cross-shard stall isolation.
func (r *shardRunner) leaderKill(g int) {
	obs := r.firstLive()
	if obs < 0 {
		return
	}
	victim := obs
	if len(r.an.SyncGroups) > 0 {
		sh := r.st.Shard(r.keys[g%len(r.keys)])
		victim = int(sh.Cluster.Leader(spec.ProcID(obs), (g/len(r.keys))%len(r.an.SyncGroups)))
	}
	r.suspend(victim)
}

func (r *shardRunner) firstLive() int {
	for i := 0; i < r.plan.Nodes; i++ {
		if !r.down[i] && !r.crashed[i] {
			return i
		}
	}
	return -1
}

func (r *shardRunner) healAll() {
	for i := 0; i < r.plan.Nodes; i++ {
		r.resume(i)
	}
	r.fab.HealAll()
	r.v.fold(int64(r.eng.Now()), -1)
}

// issueBatch spreads BatchSize updates across random shards and random
// live origins.
func (r *shardRunner) issueBatch() {
	if r.v.Issued >= r.plan.Ops {
		return
	}
	r.batches++
	if r.opts.QueryMix > 0 && r.batches%r.opts.QueryMix == 0 {
		r.issueQuery()
	}
	ups := r.cls.UpdateMethods()
	for i := 0; i < r.opts.BatchSize && r.v.Issued < r.plan.Ops; i++ {
		live := r.liveNodes()
		if len(live) == 0 {
			return
		}
		si := r.rng.Intn(len(r.keys))
		origin := spec.ProcID(live[r.rng.Intn(len(live))])
		u := ups[r.rng.Intn(len(ups))]
		call := r.cls.Gen.Call(r.rng, u)
		fixTags(&call, origin, uint64(r.v.Issued)+1)
		r.invoke(si, origin, u, call.Args)
	}
}

func (r *shardRunner) liveNodes() []int {
	var live []int
	for n := 0; n < r.plan.Nodes; n++ {
		if !r.down[n] && !r.crashed[n] {
			live = append(live, n)
		}
	}
	return live
}

func (r *shardRunner) invoke(si int, origin spec.ProcID, u spec.MethodID, args spec.Args) {
	r.v.Issued++
	r.cCalls.Inc()
	r.pending[si][origin]++
	r.st.Invoke(r.keys[si], origin, u, args, func(_ any, err error) {
		r.pending[si][origin]--
		code := int64(0)
		switch {
		case err == nil:
			r.acked[si][origin][u]++
			r.v.Acked++
		case errors.Is(err, core.ErrImpermissible):
			r.v.Rejected++
			code = 1
		case errors.Is(err, core.ErrDown):
			code = 2
		default:
			code = 3
			r.violate("invoke-error", fmt.Sprintf("%s p%d %s: %v", r.keys[si], origin, r.cls.Methods[u].Name, err))
		}
		r.v.fold(int64(r.eng.Now()), int64(si), int64(origin), int64(u), code)
	})
}

func (r *shardRunner) issueQuery() {
	qs := r.cls.QueryMethods()
	if len(qs) == 0 {
		return
	}
	live := r.liveNodes()
	if len(live) == 0 {
		return
	}
	si := r.rng.Intn(len(r.keys))
	origin := spec.ProcID(live[r.rng.Intn(len(live))])
	q := qs[r.rng.Intn(len(qs))]
	call := r.cls.Gen.Call(r.rng, q)
	fresh := r.rng.Intn(2) == 0
	r.st.Query(r.keys[si], origin, q, call.Args, fresh, func(_ any, err error) {
		code := int64(0)
		if err != nil {
			code = 1
		}
		r.v.fold(int64(r.eng.Now()), int64(si), int64(origin), int64(q), 16+code)
	})
}

func (r *shardRunner) correct(n int) bool { return !r.down[n] && !r.crashed[n] }

// shardQuiescent reports whether shard si has no in-flight calls from
// correct origins and every correct replica applied every acked update.
func (r *shardRunner) shardQuiescent(si int) bool {
	for n, c := range r.pending[si] {
		if r.correct(n) && c > 0 {
			return false
		}
	}
	sh := r.st.Shard(r.keys[si])
	for n := 0; n < r.plan.Nodes; n++ {
		if !r.correct(n) {
			continue
		}
		applied := sh.Replica(spec.ProcID(n)).Applied()
		for p := 0; p < r.plan.Nodes; p++ {
			if !r.correct(p) {
				continue
			}
			for u, want := range r.acked[si][p] {
				if applied.Get(spec.ProcID(p), spec.MethodID(u)) < want {
					return false
				}
			}
		}
	}
	return true
}

func (r *shardRunner) stalledShards() []string {
	var stalled []string
	for si, key := range r.keys {
		if !r.shardQuiescent(si) {
			stalled = append(stalled, key)
		}
	}
	return stalled
}

// drain runs until every shard is quiescent or the budget expires. The
// verdict-level Drained bit means "all shards"; per-shard stalls are
// reported individually by run().
func (r *shardRunner) drain() bool {
	deadline := r.eng.Now() + sim.Time(r.opts.DrainDeadline)
	for r.eng.Now() < deadline {
		r.eng.RunFor(200 * sim.Microsecond)
		if len(r.stalledShards()) == 0 {
			return true
		}
	}
	return false
}

func (r *shardRunner) probeConvergence(si int) {
	sh := r.st.Shard(r.keys[si])
	ref := -1
	var refState spec.State
	for n := 0; n < r.plan.Nodes; n++ {
		if !r.correct(n) {
			continue
		}
		st := sh.Replica(spec.ProcID(n)).CurrentState()
		if refState == nil {
			ref, refState = n, st
			continue
		}
		if !refState.Equal(st) {
			r.violate("convergence", fmt.Sprintf("%s: replicas p%d and p%d hold different states after heal+drain", r.keys[si], ref, n))
		}
	}
}

func (r *shardRunner) probeExactlyOnce(si int) {
	sh := r.st.Shard(r.keys[si])
	for n := 0; n < r.plan.Nodes; n++ {
		if !r.correct(n) {
			continue
		}
		applied := sh.Replica(spec.ProcID(n)).Applied()
		for p := 0; p < r.plan.Nodes; p++ {
			if !r.correct(p) {
				continue
			}
			for u, want := range r.acked[si][p] {
				got := applied.Get(spec.ProcID(p), spec.MethodID(u))
				switch {
				case got < want:
					r.violate("lost-update", fmt.Sprintf("%s: p%d applied %d of %d acked %s calls from p%d",
						r.keys[si], n, got, want, r.cls.Methods[u].Name, p))
				case got > want:
					r.violate("duplicate", fmt.Sprintf("%s: p%d applied %d %s calls from p%d but only %d were acked",
						r.keys[si], n, got, r.cls.Methods[u].Name, p, want))
				}
			}
		}
	}
}

func (r *shardRunner) probeIntegrity(final bool) {
	if r.cls.TrivialInvariant || r.cls.Invariant == nil {
		return
	}
	for _, key := range r.keys {
		sh := r.st.Shard(key)
		for n := 0; n < r.plan.Nodes; n++ {
			if r.down[n] || r.crashed[n] {
				continue
			}
			if !r.cls.Invariant(sh.Replica(spec.ProcID(n)).CurrentState()) {
				when := "during run"
				if final {
					when = "after heal+drain"
				}
				r.violate("integrity", fmt.Sprintf("%s: invariant violated at p%d (%s)", key, n, when))
				break // one report per shard per probe tick
			}
		}
	}
}

func (r *shardRunner) violate(probe, detail string) {
	r.cViolations.Inc()
	if len(r.v.Violations) >= maxViolations {
		return
	}
	r.v.Violations = append(r.v.Violations, Violation{At: r.eng.Now(), Probe: probe, Detail: detail})
}
