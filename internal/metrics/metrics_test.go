package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hamband/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	r := New(sim.NewEngine(1))
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Value() != 2 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 2 max 7", g.Value(), g.Max())
	}
	g.Set(10)
	if g.Value() != 10 || g.Max() != 10 {
		t.Fatalf("gauge after Set = %d max %d", g.Value(), g.Max())
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(1)
	h.Observe(5 * sim.Microsecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments recorded something")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	r.WriteTable(&buf) // must not panic
}

func TestHistogramQuantiles(t *testing.T) {
	r := New(sim.NewEngine(1))
	h := r.Histogram("lat", nil)
	// 100 observations 1..100 µs: p50 ≈ 50 µs, p99 ≈ 99 µs.
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1*sim.Microsecond || h.Max() != 100*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	p50 := h.Quantile(0.50)
	p95 := h.Quantile(0.95)
	p99 := h.Quantile(0.99)
	// Bucketed estimates: tolerate a factor-2 bucket's worth of error.
	if p50 < 30*sim.Microsecond || p50 > 70*sim.Microsecond {
		t.Fatalf("p50 = %v, want ≈50µs", p50)
	}
	if p95 < p50 || p99 < p95 || p99 > h.Max() {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v", p50, p95, p99, h.Max())
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("extreme quantiles should clamp to min/max")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := New(sim.NewEngine(1))
	h := r.Histogram("lat", []sim.Duration{sim.Microsecond})
	h.Observe(5 * sim.Second) // far past the last bound
	if h.Quantile(0.99) != 5*sim.Second {
		t.Fatalf("overflow quantile = %v, want the observed max", h.Quantile(0.99))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Count() != 0 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) = %v on empty histogram, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("mean/min/max = %v/%v/%v on empty histogram", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(37 * sim.Microsecond)
	// With one sample every quantile is that sample: interpolation must
	// clamp to the observed min/max, not report a bucket boundary.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 37*sim.Microsecond {
			t.Errorf("Quantile(%v) = %v, want 37µs", q, got)
		}
	}
	if h.Mean() != 37*sim.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramOverflowInterpolation(t *testing.T) {
	// One bound at 1µs: observations above it land in the overflow bucket,
	// which has no upper edge to interpolate against, so any quantile owned
	// by it must report the observed max rather than extrapolate.
	h := NewHistogram([]sim.Duration{sim.Microsecond})
	h.Observe(500 * sim.Nanosecond) // regular bucket
	h.Observe(2 * sim.Second)       // overflow
	h.Observe(5 * sim.Second)       // overflow
	if got := h.Quantile(0.99); got != 5*sim.Second {
		t.Fatalf("p99 = %v, want the observed max 5s", got)
	}
	if got := h.Quantile(0.5); got != 5*sim.Second {
		t.Fatalf("p50 owned by overflow bucket = %v, want max", got)
	}
	if got := h.Quantile(0.1); got > sim.Microsecond {
		t.Fatalf("p10 = %v, should stay in the sub-1µs bucket", got)
	}
}

func TestHistogramMeanAndSum(t *testing.T) {
	h := newHistogram(nil)
	h.Observe(2 * sim.Microsecond)
	h.Observe(4 * sim.Microsecond)
	if h.Sum() != 6*sim.Microsecond || h.Mean() != 3*sim.Microsecond {
		t.Fatalf("sum=%v mean=%v", h.Sum(), h.Mean())
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	eng := sim.NewEngine(1)
	eng.At(1000, func() {})
	eng.Run()
	r := New(eng)
	r.Counter("ops").Add(9)
	r.Gauge("depth").Set(4)
	r.Histogram("lat", nil).Observe(3 * sim.Microsecond)
	s := r.Snapshot()
	if s.AtNS != 1000 {
		t.Fatalf("snapshot at %d, want virtual time 1000", s.AtNS)
	}
	if s.Counters["ops"] != 9 || s.Gauges["depth"].Value != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	hs := s.Histograms["lat"]
	if hs.Count != 1 || hs.P99NS != int64(3*sim.Microsecond) {
		t.Fatalf("hist snapshot = %+v", hs)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["ops"] != 9 {
		t.Fatalf("round-tripped counters = %+v", back.Counters)
	}
}

func TestWriteTable(t *testing.T) {
	r := New(sim.NewEngine(1))
	r.Histogram("core.call.reduce", nil).Observe(2 * sim.Microsecond)
	r.Counter("rdma.qp.0-1.writes").Inc()
	r.Gauge("core.queue.free_depth").Set(2)
	var buf bytes.Buffer
	r.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"p50", "p95", "p99", "core.call.reduce", "rdma.qp.0-1.writes", "core.queue.free_depth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestDisabledHotPathZeroAlloc is the acceptance check: with metrics
// disabled (nil instruments), the hot path allocates nothing.
func TestDisabledHotPathZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(7 * sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled hot path allocates %.1f per op, want 0", allocs)
	}
}

// The enabled hot path is allocation-free too: recording is index
// arithmetic over pre-sized arrays.
func TestEnabledHotPathZeroAlloc(t *testing.T) {
	r := New(sim.NewEngine(1))
	c := r.Counter("c")
	h := r.Histogram("h", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(3 * sim.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkDisabledObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(sim.Duration(i))
	}
}

func BenchmarkEnabledObserve(b *testing.B) {
	h := newHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(sim.Duration(i))
	}
}
