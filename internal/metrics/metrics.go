// Package metrics is the Hamband runtime's measurement substrate: a
// sim-time-aware registry of counters, gauges and fixed-bucket latency
// histograms with percentile extraction.
//
// The design mirrors the tracer's opt-in contract but is built for hot
// paths:
//
//   - a nil *Registry — and the nil instruments it hands out — is a valid,
//     allocation-free no-op, so instrumented code needs no "is metrics on?"
//     branches and pays nothing when observability is disabled;
//   - instruments are looked up (and named) once at setup time; recording
//     is a field increment or a bucket index, never a map access or an
//     allocation;
//   - histograms use fixed exponential buckets, so Observe is O(log b) with
//     no memory growth, and p50/p95/p99 are extracted by interpolating
//     within the owning bucket.
//
// All times are virtual (package sim): a snapshot stamps the engine's
// current virtual time, which is what makes per-run reports reproducible.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hamband/internal/sim"
)

// Counter is a monotone event count. The nil counter discards increments.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for the nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level (queue depth, in-flight count). The nil
// gauge discards updates.
type Gauge struct {
	v   int64
	max int64
}

// Set installs an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v += d
	if g.v > g.max {
		g.max = g.v
	}
}

// Value returns the current level (0 for the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 for the nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// maxBuckets bounds a histogram's bucket count (the +1 overflow bucket is
// stored separately).
const maxBuckets = 64

// Histogram is a fixed-bucket latency distribution. Bounds are inclusive
// upper edges in virtual nanoseconds; observations above the last bound
// land in an overflow bucket. The nil histogram discards observations.
type Histogram struct {
	bounds []sim.Duration
	counts []uint64 // len(bounds)+1; last is overflow
	n      uint64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

// DefaultLatencyBounds covers the fabric's operating range: 250 ns to
// ~8 ms, doubling — fine enough to separate a one-sided write (~2 µs RTT)
// from a consensus round (~5 µs) from a fail-over (~100 µs+).
func DefaultLatencyBounds() []sim.Duration {
	bounds := make([]sim.Duration, 0, 16)
	for b := 250 * sim.Nanosecond; b <= 8*sim.Millisecond; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// NewHistogram returns a standalone histogram over bounds (nil bounds:
// DefaultLatencyBounds), unattached to any registry — for consumers that
// want percentile extraction without naming an instrument.
func NewHistogram(bounds []sim.Duration) *Histogram { return newHistogram(bounds) }

// newHistogram builds a histogram over sorted bounds.
func newHistogram(bounds []sim.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	if len(bounds) > maxBuckets {
		panic(fmt.Sprintf("metrics: %d buckets exceeds the %d limit", len(bounds), maxBuckets))
	}
	bs := append([]sim.Duration(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one duration. Zero allocation; O(log buckets).
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= d.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() sim.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() sim.Duration {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.n)
}

// Max returns the largest observation.
func (h *Histogram) Max() sim.Duration {
	if h == nil {
		return 0
	}
	return h.max
}

// Min returns the smallest observation.
func (h *Histogram) Min() sim.Duration {
	if h == nil {
		return 0
	}
	return h.min
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by linear
// interpolation within the owning bucket, clamped to the observed min/max.
// The overflow bucket reports the observed max.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h == nil || h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(h.bounds) {
			return h.max // overflow bucket
		}
		lo := sim.Duration(0)
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - prev) / float64(c)
		est := lo + sim.Duration(frac*float64(hi-lo))
		if est < h.min {
			est = h.min
		}
		if est > h.max {
			est = h.max
		}
		return est
	}
	return h.max
}

// Registry names and owns instruments. Construct with New; the nil
// registry hands out nil instruments, making every downstream record a
// no-op. The simulation is single-threaded, so no locking is needed.
type Registry struct {
	eng   *sim.Engine
	names []string // registration order, for stable reports
	cs    map[string]*Counter
	gs    map[string]*Gauge
	hs    map[string]*Histogram
}

// New returns an enabled registry stamped with eng's virtual clock.
func New(eng *sim.Engine) *Registry {
	return &Registry{
		eng: eng,
		cs:  make(map[string]*Counter),
		gs:  make(map[string]*Gauge),
		hs:  make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op counter) on the nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.cs[name]
	if !ok {
		c = &Counter{}
		r.cs[name] = c
		r.names = append(r.names, name)
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gs[name]
	if !ok {
		g = &Gauge{}
		r.gs[name] = g
		r.names = append(r.names, name)
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (nil bounds: DefaultLatencyBounds).
func (r *Registry) Histogram(name string, bounds []sim.Duration) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hs[name]
	if !ok {
		h = newHistogram(bounds)
		r.hs[name] = h
		r.names = append(r.names, name)
	}
	return h
}

// Now returns the registry's virtual clock (0 on the nil registry), for
// stamping latency measurement start points.
func (r *Registry) Now() sim.Time {
	if r == nil || r.eng == nil {
		return 0
	}
	return r.eng.Now()
}

// --- export -------------------------------------------------------------

// HistogramSnapshot is the exported view of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	SumNS int64   `json:"sum_ns"`
	MinNS int64   `json:"min_ns"`
	MaxNS int64   `json:"max_ns"`
	P50NS int64   `json:"p50_ns"`
	P95NS int64   `json:"p95_ns"`
	P99NS int64   `json:"p99_ns"`
	Mean  float64 `json:"mean_us"`
}

// GaugeSnapshot is the exported view of one gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time export of every instrument.
type Snapshot struct {
	AtNS       int64                        `json:"at_ns"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports the registry's current state, stamped with the virtual
// time. The nil registry snapshots as empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.AtNS = int64(r.Now())
	for name, c := range r.cs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gs {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hs {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(),
			SumNS: int64(h.Sum()),
			MinNS: int64(h.Min()),
			MaxNS: int64(h.Max()),
			P50NS: int64(h.Quantile(0.50)),
			P95NS: int64(h.Quantile(0.95)),
			P99NS: int64(h.Quantile(0.99)),
			Mean:  h.Mean().Micros(),
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteTable writes a human-readable report: a percentile table for every
// histogram followed by counters and gauges, in registration order.
func (r *Registry) WriteTable(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "(metrics disabled)")
		return
	}
	wroteHist := false
	for _, name := range r.names {
		h, ok := r.hs[name]
		if !ok || h.Count() == 0 {
			continue
		}
		if !wroteHist {
			fmt.Fprintf(w, "%-34s %9s %10s %10s %10s %10s %10s\n",
				"histogram", "count", "mean", "p50", "p95", "p99", "max")
			wroteHist = true
		}
		fmt.Fprintf(w, "%-34s %9d %10v %10v %10v %10v %10v\n",
			name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95),
			h.Quantile(0.99), h.Max())
	}
	wroteCount := false
	for _, name := range r.names {
		if c, ok := r.cs[name]; ok {
			if !wroteCount {
				fmt.Fprintf(w, "%-34s %14s\n", "counter", "value")
				wroteCount = true
			}
			fmt.Fprintf(w, "%-34s %14d\n", name, c.Value())
		}
	}
	wroteGauge := false
	for _, name := range r.names {
		if g, ok := r.gs[name]; ok {
			if !wroteGauge {
				fmt.Fprintf(w, "%-34s %14s %8s\n", "gauge", "value", "max")
				wroteGauge = true
			}
			fmt.Fprintf(w, "%-34s %14d %8d\n", name, g.Value(), g.Max())
		}
	}
}
