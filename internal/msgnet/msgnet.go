// Package msgnet simulates a conventional two-sided message-passing network
// — the substrate of the paper's MSG (message-passing CRDT) baseline.
//
// Unlike one-sided RDMA (package rdma), every message traverses the full
// network and operating-system stack on both ends: the sender pays a
// syscall/copy cost on its CPU, the message propagates with kernel-stack
// latency, and the receiver pays an interrupt/receive/dispatch cost on its
// CPU before the handler runs. This per-message CPU consumption at N−1
// receivers is what limits the MSG baseline's throughput in the paper's
// evaluation.
package msgnet

import (
	"hamband/internal/sim"
)

// NodeID identifies a network endpoint. IDs are dense, starting at 0.
type NodeID int

// CostModel holds the message-path cost parameters. Defaults are calibrated
// to a kernel TCP/IP messaging stack with serialization over the same
// 40 Gbps link: ~3 µs send path, ~5 µs receive path (interrupt, protocol,
// deserialize, dispatch), ~30 µs one-way latency.
type CostModel struct {
	SendCost   sim.Duration // sender CPU: syscall, copy, protocol send path
	RecvCost   sim.Duration // receiver CPU: interrupt, protocol recv path, dispatch
	Latency    sim.Duration // one-way wire + stack propagation
	BytesPerNS int          // wire bandwidth, bytes per virtual ns
}

// DefaultCost returns the calibrated kernel-stack cost model.
func DefaultCost() CostModel {
	return CostModel{
		SendCost:   3 * sim.Microsecond,
		RecvCost:   5 * sim.Microsecond,
		Latency:    30 * sim.Microsecond,
		BytesPerNS: 5,
	}
}

func (m CostModel) transfer(n int) sim.Duration {
	if m.BytesPerNS <= 0 {
		return 0
	}
	return sim.Duration(n / m.BytesPerNS)
}

// Handler consumes a message delivered to an endpoint. It runs on the
// receiving node's CPU after the receive cost has been charged.
type Handler func(from NodeID, payload []byte)

// Stats counts network activity.
type Stats struct {
	Sent, Delivered, Dropped uint64
	Bytes                    uint64
}

// Network is a simulated two-sided message network with FIFO channels.
type Network struct {
	eng   *sim.Engine
	cost  CostModel
	nodes []*Endpoint
	stats Stats
}

// New creates a network with n endpoints using the given cost model.
func New(eng *sim.Engine, n int, cost CostModel) *Network {
	nw := &Network{eng: eng, cost: cost}
	for i := 0; i < n; i++ {
		nw.nodes = append(nw.nodes, &Endpoint{
			id:  NodeID(i),
			net: nw,
			CPU: sim.NewCPU(eng),
		})
	}
	return nw
}

// Engine returns the engine the network runs on.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Size returns the number of endpoints.
func (nw *Network) Size() int { return len(nw.nodes) }

// Node returns the endpoint with the given id.
func (nw *Network) Node(id NodeID) *Endpoint { return nw.nodes[id] }

// Stats returns a snapshot of traffic counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Endpoint is one node on the network.
type Endpoint struct {
	id      NodeID
	net     *Network
	CPU     *sim.CPU
	handler Handler
	down    bool
	lastArr map[NodeID]sim.Time // per-sender FIFO horizon
}

// ID returns the endpoint's identifier.
func (ep *Endpoint) ID() NodeID { return ep.id }

// Handle installs the message handler. Messages arriving before a handler
// is installed are dropped.
func (ep *Endpoint) Handle(h Handler) { ep.handler = h }

// Down reports whether the endpoint has failed.
func (ep *Endpoint) Down() bool { return ep.down }

// Fail stops the endpoint: messages to it are dropped and its CPU pauses.
func (ep *Endpoint) Fail() {
	ep.down = true
	ep.CPU.Suspend()
}

// Recover restarts a failed endpoint.
func (ep *Endpoint) Recover() {
	ep.down = false
	ep.CPU.Resume()
}

// Send transmits payload to the endpoint to. The payload is copied at call
// time. Delivery charges the receiver's CPU; channels are FIFO per
// (sender, receiver) pair. onSent, if non-nil, runs on the sender's CPU
// when the send-side work completes (useful for response-time accounting).
func (ep *Endpoint) Send(to NodeID, payload []byte, onSent func()) {
	if ep.down {
		return
	}
	buf := append([]byte(nil), payload...)
	nw := ep.net
	nw.stats.Sent++
	nw.stats.Bytes += uint64(len(buf))
	ep.CPU.Exec(nw.cost.SendCost, func() {
		if onSent != nil {
			onSent()
		}
		dst := nw.nodes[to]
		arrive := nw.eng.Now() + sim.Time(nw.cost.Latency+nw.cost.transfer(len(buf)))
		if dst.lastArr == nil {
			dst.lastArr = make(map[NodeID]sim.Time)
		}
		if prev := dst.lastArr[ep.id]; arrive <= prev {
			arrive = prev + 1
		}
		dst.lastArr[ep.id] = arrive
		nw.eng.At(arrive, func() {
			if dst.down || dst.handler == nil {
				nw.stats.Dropped++
				return
			}
			from := ep.id
			dst.CPU.Exec(nw.cost.RecvCost, func() {
				nw.stats.Delivered++
				dst.handler(from, buf)
			})
		})
	})
}

// Broadcast sends payload to every other endpoint, charging one send per
// destination (no hardware multicast, as in the MSG baseline).
func (ep *Endpoint) Broadcast(payload []byte, onSent func()) {
	n := len(ep.net.nodes)
	remaining := n - 1
	if remaining <= 0 {
		if onSent != nil {
			onSent()
		}
		return
	}
	cb := func() {
		remaining--
		if remaining == 0 && onSent != nil {
			onSent()
		}
	}
	for id := range ep.net.nodes {
		if NodeID(id) != ep.id {
			ep.Send(NodeID(id), payload, cb)
		}
	}
}
