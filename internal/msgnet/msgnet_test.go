package msgnet

import (
	"testing"

	"hamband/internal/sim"
)

func testNet(n int) (*sim.Engine, *Network) {
	eng := sim.NewEngine(3)
	return eng, New(eng, n, DefaultCost())
}

func TestSendDelivers(t *testing.T) {
	eng, nw := testNet(2)
	var gotFrom NodeID = -1
	var gotPayload string
	nw.Node(1).Handle(func(from NodeID, p []byte) {
		gotFrom = from
		gotPayload = string(p)
	})
	eng.At(0, func() { nw.Node(0).Send(1, []byte("ping"), nil) })
	eng.Run()
	if gotFrom != 0 || gotPayload != "ping" {
		t.Fatalf("delivered (%d, %q), want (0, ping)", gotFrom, gotPayload)
	}
}

func TestSendChargesBothCPUs(t *testing.T) {
	eng, nw := testNet(2)
	nw.Node(1).Handle(func(NodeID, []byte) {})
	eng.At(0, func() { nw.Node(0).Send(1, []byte("x"), nil) })
	eng.Run()
	if nw.Node(0).CPU.BusyTotal() < DefaultCost().SendCost {
		t.Fatalf("sender CPU busy %v, want >= send cost", nw.Node(0).CPU.BusyTotal())
	}
	if nw.Node(1).CPU.BusyTotal() < DefaultCost().RecvCost {
		t.Fatalf("receiver CPU busy %v, want >= recv cost", nw.Node(1).CPU.BusyTotal())
	}
}

func TestFIFOPerSender(t *testing.T) {
	eng, nw := testNet(2)
	var got []byte
	nw.Node(1).Handle(func(_ NodeID, p []byte) { got = append(got, p[0]) })
	eng.At(0, func() {
		for i := byte(0); i < 10; i++ {
			nw.Node(0).Send(1, []byte{i}, nil)
		}
	})
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

func TestPayloadCopiedAtSend(t *testing.T) {
	eng, nw := testNet(2)
	var got string
	nw.Node(1).Handle(func(_ NodeID, p []byte) { got = string(p) })
	buf := []byte("aa")
	eng.At(0, func() {
		nw.Node(0).Send(1, buf, nil)
		copy(buf, "zz")
	})
	eng.Run()
	if got != "aa" {
		t.Fatalf("payload = %q, want value at send time", got)
	}
}

func TestFailedNodeDropsMessages(t *testing.T) {
	eng, nw := testNet(2)
	delivered := false
	nw.Node(1).Handle(func(NodeID, []byte) { delivered = true })
	nw.Node(1).Fail()
	eng.At(0, func() { nw.Node(0).Send(1, []byte("x"), nil) })
	eng.Run()
	if delivered {
		t.Fatal("failed node received a message")
	}
	if nw.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", nw.Stats().Dropped)
	}
}

func TestFailedSenderSendsNothing(t *testing.T) {
	eng, nw := testNet(2)
	delivered := false
	nw.Node(1).Handle(func(NodeID, []byte) { delivered = true })
	nw.Node(0).Fail()
	eng.At(0, func() { nw.Node(0).Send(1, []byte("x"), nil) })
	eng.Run()
	if delivered {
		t.Fatal("failed sender's message was delivered")
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	eng, nw := testNet(4)
	got := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		nw.Node(NodeID(i)).Handle(func(NodeID, []byte) { got[i]++ })
	}
	sent := false
	eng.At(0, func() { nw.Node(2).Broadcast([]byte("b"), func() { sent = true }) })
	eng.Run()
	if !sent {
		t.Fatal("broadcast onSent never fired")
	}
	for i, n := range got {
		want := 1
		if i == 2 {
			want = 0
		}
		if n != want {
			t.Fatalf("node %d received %d, want %d", i, n, want)
		}
	}
}

func TestBroadcastSingleNode(t *testing.T) {
	eng, nw := testNet(1)
	sent := false
	eng.At(0, func() { nw.Node(0).Broadcast([]byte("b"), func() { sent = true }) })
	eng.Run()
	if !sent {
		t.Fatal("single-node broadcast should complete immediately")
	}
}

func TestMessageSlowerThanRDMA(t *testing.T) {
	// Structural sanity: one message costs more end-to-end time than the
	// modeled one-sided write latency. This is the premise of the paper.
	eng, nw := testNet(2)
	var deliveredAt sim.Time
	nw.Node(1).Handle(func(NodeID, []byte) { deliveredAt = eng.Now() })
	eng.At(0, func() { nw.Node(0).Send(1, []byte("x"), nil) })
	eng.Run()
	if deliveredAt < 10_000 { // 10 µs
		t.Fatalf("message delivered after %d ns; model should exceed 10 µs", deliveredAt)
	}
}
