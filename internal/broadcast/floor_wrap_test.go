package broadcast

import (
	"testing"

	"hamband/internal/codec"
	"hamband/internal/rdma"
	"hamband/internal/ring"
	"hamband/internal/sim"
)

// TestFloorAfterDrainWrapAtPollBoundary pins the promotion edge where the
// drained source's ring wraps exactly at a poll boundary: the poll falls
// between the wrap skip marker landing and the wrapped record landing, so
// the reader observes a zero length word at offset zero — byte-identical to
// an empty ring. A parked floor must NOT promote on that poll (the wrapped
// record was legitimately posted before the source's write permission was
// revoked; promoting first would stale-reject it — a lost update). It must
// promote on the next poll, after the record has landed and been delivered.
//
// The test lands the writer's remote writes directly in the receiver's
// region between poll ticks, the deterministic equivalent of the QP's
// in-order delivery, so the poll/landing interleaving is exact.
func TestFloorAfterDrainWrapAtPollBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RingCapacity = 128
	eng := sim.NewEngine(17)
	fab := rdma.NewFabric(eng, 2, rdma.DefaultLatency())
	Setup(fab, cfg)

	var got []string
	rx := NewReceiver(fab, fab.Node(1), cfg, func(src rdma.NodeID, seq uint64, payload []byte) {
		got = append(got, string(payload))
	})
	defer rx.Stop()

	region := fab.Node(1).Region(cfg.inRegion(0)).Bytes()
	w := ring.NewWriter(cfg.RingCapacity)
	land := func(writes []ring.Write) {
		for _, wr := range writes {
			copy(region[wr.Off:], wr.Data)
		}
	}
	// frame builds the wire record for one message, padded so the framed
	// size is exactly 49 bytes: two fill the 128-byte lap to offset 98,
	// leaving a 30-byte remainder that forces an explicit skip marker.
	frame := func(seq uint64, tag string) []byte {
		payload := append([]byte(tag), make([]byte, 28-len(tag))...)
		rec, err := codec.EncodeRaw(encodeMessage(0, seq, payload))
		if err != nil {
			t.Fatal(err)
		}
		if len(rec) != 49 {
			t.Fatalf("framed record is %d bytes, want 49", len(rec))
		}
		return rec
	}

	// Two records fill the first lap; the receiver drains them.
	eng.At(0, func() {
		for seq, tag := range []string{"m1", "m2"} {
			writes, ok := w.Append(frame(uint64(seq+1), tag))
			if !ok {
				t.Fatal("append refused on an empty ring")
			}
			land(writes)
		}
	})
	// t=10µs (between polls, all drained): the membership layer parks an
	// epoch floor for source 0, and the wrapping record's skip marker lands —
	// but not the record itself. The next poll sees marker + zeroes.
	var wrapWrites []ring.Write
	eng.At(sim.Time(10*sim.Microsecond)+sim.Time(sim.Microsecond/2), func() {
		rx.FloorAfterDrain(0, 2)
		w.NoteHead(ring.DecodeHead(region))
		var ok bool
		wrapWrites, ok = w.Append(frame(3, "m3"))
		if !ok || len(wrapWrites) != 2 {
			t.Fatalf("wrap append = (%d writes, %v), want marker + record", len(wrapWrites), ok)
		}
		land(wrapWrites[:1]) // marker only: the record write is in flight
	})
	// t=13µs: at least one poll has run between marker and record. The
	// floor must still be parked — an un-quiescent idle is not a drain.
	eng.At(sim.Time(13*sim.Microsecond), func() {
		h, ok := rx.SourceRing(0)
		if !ok {
			t.Fatal("no ring for source 0")
		}
		if !h.HasPending || h.PendingMin != 2 {
			t.Errorf("floor not parked across the wrap gap: %+v", h)
		}
		if h.MinEpoch != 0 {
			t.Errorf("floor promoted with the wrapped record in flight: MinEpoch %d", h.MinEpoch)
		}
		land(wrapWrites[1:]) // the wrapped record lands
	})
	eng.RunUntil(sim.Time(40 * sim.Microsecond))

	// The wrapped record — stamped epoch 0, below the parked floor — must
	// have been delivered, not stale-rejected, and only then the floor
	// promoted on the genuine drain.
	if len(got) != 3 || got[2][:2] != "m3" {
		t.Fatalf("deliveries = %v, want m1 m2 m3", got)
	}
	h, _ := rx.SourceRing(0)
	if h.MinEpoch != 2 || h.HasPending {
		t.Fatalf("floor not promoted after the drain: %+v", h)
	}
	if n := rx.StaleRejects(); n != 0 {
		t.Fatalf("StaleRejects = %d: the pre-revocation record was rejected", n)
	}
}
