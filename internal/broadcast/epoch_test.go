package broadcast

import (
	"testing"

	"hamband/internal/metrics"
	"hamband/internal/rdma"
	"hamband/internal/sim"
)

// TestStaleEpochRecordsRejected raises a receiver's epoch floor for one
// source before that source's record arrives: the ring reader must consume
// and discard the stale-stamped record (counted, surfaced in metrics, never
// delivered), while a record stamped with the new epoch passes.
func TestStaleEpochRecordsRejected(t *testing.T) {
	cfg := DefaultConfig()
	eng := sim.NewEngine(31)
	fab := rdma.NewFabric(eng, 2, rdma.DefaultLatency())
	cfg.Metrics = metrics.New(eng)
	Setup(fab, cfg)

	bc := NewBroadcaster(fab, fab.Node(0), cfg)
	var got []delivery
	rx := NewReceiver(fab, fab.Node(1), cfg, func(src rdma.NodeID, seq uint64, payload []byte) {
		got = append(got, delivery{src, seq, string(payload)})
	})
	// Node 0 left the configuration at epoch 1 but does not know yet: it
	// still stamps epoch 0.
	rx.SetMinEpoch(0, 1)

	eng.At(0, func() {
		if err := bc.Broadcast([]byte("stale"), nil); err != nil {
			t.Error(err)
		}
	})
	eng.At(sim.Time(200*sim.Microsecond), func() {
		bc.SetEpoch(1) // the node learns of the new configuration
		if err := bc.Broadcast([]byte("fresh"), nil); err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(sim.Time(2 * sim.Millisecond))

	if len(got) != 1 || got[0].msg != "fresh" {
		t.Fatalf("deliveries = %v, want exactly the fresh record", got)
	}
	if n := rx.StaleRejects(); n != 1 {
		t.Fatalf("StaleRejects = %d, want 1", n)
	}
	if n := cfg.Metrics.Counter("broadcast.stale_rejects").Value(); n != 1 {
		t.Fatalf("stale_rejects counter = %d, want 1", n)
	}
}

// TestSetEpochMonotone pins that a broadcaster never regresses its stamp
// and a receiver never lowers a source's floor.
func TestSetEpochMonotone(t *testing.T) {
	cfg := DefaultConfig()
	eng := sim.NewEngine(7)
	fab := rdma.NewFabric(eng, 2, rdma.DefaultLatency())
	Setup(fab, cfg)
	bc := NewBroadcaster(fab, fab.Node(0), cfg)
	bc.SetEpoch(3)
	bc.SetEpoch(1)
	if bc.Epoch() != 3 {
		t.Fatalf("Epoch = %d, want 3", bc.Epoch())
	}
	rx := NewReceiver(fab, fab.Node(1), cfg, func(rdma.NodeID, uint64, []byte) {})
	rx.SetMinEpoch(0, 2)
	rx.SetMinEpoch(0, 1)
	if rx.minEpoch[0] != 2 {
		t.Fatalf("minEpoch = %d, want 2", rx.minEpoch[0])
	}
}
