package broadcast

import (
	"testing"

	"hamband/internal/metrics"
	"hamband/internal/rdma"
	"hamband/internal/sim"
)

// TestRecoverFromWhileReaderSuspendedMidRead pins down the backup-slot
// recovery race the chaos runner's schedules exercise: a reader starts a
// RecoverFrom sweep and is itself suspended while the backup-region read
// is in flight. The snapshot is captured at the source when the read
// lands, but the CQE callback queues on the suspended CPU, so the reader
// processes a *stale* snapshot long after resuming — by which time the
// source has freed and reused those slots for newer broadcasts. The dedup
// watermark must absorb every message in the stale snapshot without
// double-delivering or losing anything.
//
// Schedule (3 nodes, source 0, readers 1 and 2; tiny rings so slots stay
// occupied under backpressure):
//
//	t=0        node 2 suspends; node 0 broadcasts 20 messages. Node 2's
//	           ring fills, so in-flight broadcasts pin their backup slots
//	           and the rest queue for a free slot.
//	t=100µs    node 1 starts RecoverFrom(0): the backup read snapshots
//	           the occupied slots at the source.
//	t=101µs    node 1 suspends — read completion now parks on its CPU.
//	t=150µs    node 2 resumes: rings drain, slots free and are reused.
//	t=400µs    node 1 resumes and only now processes the stale snapshot,
//	           plus everything that piled up in its own ring.
//
// Every message must be delivered exactly once at both readers.
func TestRecoverFromWhileReaderSuspendedMidRead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RingCapacity = 128 // ~6 records: node 2's ring fills fast
	cfg.BackupSlots = 4
	cfg.BackupSlot = 128
	eng := sim.NewEngine(31)
	cfg.Metrics = metrics.New(eng)
	fab := rdma.NewFabric(eng, 3, rdma.DefaultLatency())
	Setup(fab, cfg)

	const n = 20
	got := make([]map[uint64]int, 3) // per node: seq -> delivery count
	bcs := make([]*Broadcaster, 3)
	rcs := make([]*Receiver, 3)
	for i := 0; i < 3; i++ {
		i := i
		got[i] = make(map[uint64]int)
		node := fab.Node(rdma.NodeID(i))
		bcs[i] = NewBroadcaster(fab, node, cfg)
		rcs[i] = NewReceiver(fab, node, cfg, func(src rdma.NodeID, seq uint64, payload []byte) {
			if src != 0 {
				t.Errorf("node %d delivered from unexpected source %d", i, src)
			}
			got[i][seq]++
		})
	}
	recovered := cfg.Metrics.Counter("broadcast.backup_slots_recovered")

	done := 0
	eng.At(0, func() {
		fab.Node(2).Suspend()
		for i := 0; i < n; i++ {
			if err := bcs[0].Broadcast([]byte{'m', byte('a' + i)}, func() { done++ }); err != nil {
				t.Errorf("broadcast %d: %v", i, err)
			}
		}
	})
	eng.At(sim.Time(100*sim.Microsecond), func() {
		if cfg.Metrics.Counter("broadcast.backup_slot_waits").Value() == 0 {
			t.Error("no broadcast ever waited for a backup slot — backpressure never built, test is vacuous")
		}
		rcs[1].RecoverFrom(0)
	})
	eng.At(sim.Time(101*sim.Microsecond), func() { fab.Node(1).Suspend() })
	eng.At(sim.Time(150*sim.Microsecond), func() { fab.Node(2).Resume() })
	eng.At(sim.Time(400*sim.Microsecond), func() {
		if v := recovered.Value(); v != 0 {
			t.Errorf("snapshot processed while reader suspended (%d slots) — completion bypassed the CPU", v)
		}
		fab.Node(1).Resume()
	})
	eng.RunUntil(sim.Time(5 * sim.Millisecond))

	if done != n {
		t.Errorf("%d of %d broadcast completions fired", done, n)
	}
	if recovered.Value() == 0 {
		t.Error("recovery sweep decoded no slots — the mid-read schedule never exercised the snapshot path")
	}
	for node := 1; node <= 2; node++ {
		for seq := uint64(1); seq <= n; seq++ {
			if c := got[node][seq]; c != 1 {
				t.Errorf("node %d delivered seq %d %d times, want exactly once", node, seq, c)
			}
		}
		if len(got[node]) != n {
			t.Errorf("node %d delivered %d distinct seqs, want %d", node, len(got[node]), n)
		}
	}
	if len(got[0]) != 0 {
		t.Errorf("source delivered its own messages: %v", got[0])
	}
}
