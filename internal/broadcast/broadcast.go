// Package broadcast implements Hamband's RDMA reliable broadcast (§4):
//
// A source node assigns each message a sequence number, writes it to a
// local *backup* region first, then remotely appends it to a single-writer
// ring at every other node, and clears the backup once every remote write
// has completed. If the source fails mid-fan-out, the agreement property
// ("if a message is delivered by some correct node, every correct node
// eventually delivers it") is preserved by recovery: when the failure
// detector suspects the source, the other nodes remotely read the source's
// backup region — its NIC still serves one-sided reads under the paper's
// suspension failure model — and deliver any pending message they have not
// seen.
//
// Receivers deduplicate by (source, sequence number), so a message that was
// both written to a ring and recovered from the backup is delivered once.
package broadcast

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hamband/internal/codec"
	"hamband/internal/metrics"
	"hamband/internal/rdma"
	"hamband/internal/ring"
	"hamband/internal/sim"
)

// Region naming. The namespace prefix lets several broadcast domains (one
// per replicated object) share a fabric.
func (c Config) backupRegion() string { return c.Namespace + "rb-backup" }

func (c Config) inRegion(src rdma.NodeID) string { return InboundRegion(c.Namespace, src) }

// InboundRegion names the inbound ring on a receiving node that source src
// writes into. Exported so the membership layer (package core) can revoke
// and restore src's write permission on it across configuration changes.
func InboundRegion(ns string, src rdma.NodeID) string {
	return fmt.Sprintf("%srb-in-%d", ns, src)
}

// Config holds broadcast parameters.
type Config struct {
	// Namespace prefixes every region name, isolating this broadcast
	// domain from others sharing the fabric (one per replicated object).
	Namespace string

	RingCapacity int          // per-source inbound ring data capacity
	BackupSlots  int          // concurrent in-flight broadcasts per source
	BackupSlot   int          // backup slot size (bytes)
	PollPeriod   sim.Duration // receiver ring poll period
	RetryDelay   sim.Duration // writer retry delay when a ring is full
	PollCost     sim.Duration // CPU cost of one poll sweep
	DeliverCost  sim.Duration // CPU cost of delivering one message

	// Metrics, when non-nil, receives protocol counters (ring-full
	// retries, backup-slot recoveries). Nil disables instrumentation.
	Metrics *metrics.Registry
}

// DefaultConfig returns sizes suited to the benchmark workloads.
func DefaultConfig() Config {
	return Config{
		RingCapacity: 1 << 16,
		BackupSlots:  64,
		BackupSlot:   512,
		PollPeriod:   2 * sim.Microsecond,
		RetryDelay:   5 * sim.Microsecond,
		PollCost:     50 * sim.Nanosecond,
		DeliverCost:  100 * sim.Nanosecond,
	}
}

// Setup registers the broadcast regions on every node of the fabric:
// one backup region per node and one inbound ring per (node, source) pair,
// writable only by the source. Call once before creating broadcasters.
func Setup(fab *rdma.Fabric, cfg Config) {
	for i := 0; i < fab.Size(); i++ {
		node := fab.Node(rdma.NodeID(i))
		node.Register(cfg.backupRegion(), cfg.BackupSlots*cfg.BackupSlot)
		for s := 0; s < fab.Size(); s++ {
			src := rdma.NodeID(s)
			if src == node.ID() {
				continue
			}
			r := node.Register(cfg.inRegion(src), ring.RegionSize(cfg.RingCapacity))
			r.AllowWrite(src)
		}
	}
}

// message is the wire format: u32 epoch | u64 seq | payload. The epoch is
// the configuration the source believed current when it posted the write;
// receivers reject messages stamped before the source's minimum epoch
// (dynamic membership: a removed node that has not yet learned of its
// removal keeps stamping its old epoch, and those writes must not be
// delivered).
const messageHeader = 12

func encodeMessage(epoch uint32, seq uint64, payload []byte) []byte {
	b := make([]byte, messageHeader+len(payload))
	binary.LittleEndian.PutUint32(b, epoch)
	binary.LittleEndian.PutUint64(b[4:], seq)
	copy(b[messageHeader:], payload)
	return b
}

func decodeMessage(b []byte) (epoch uint32, seq uint64, payload []byte, err error) {
	if len(b) < messageHeader {
		return 0, 0, nil, codec.ErrCorrupt
	}
	return binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint64(b[4:]), b[messageHeader:], nil
}

// recordEpoch extracts the epoch stamp from a framed ring record — the
// extractor installed on every inbound ring reader's epoch gate.
func recordEpoch(rec []byte) (uint32, bool) {
	msg, _, err := codec.DecodeRaw(rec)
	if err != nil || len(msg) < messageHeader {
		return 0, false
	}
	return binary.LittleEndian.Uint32(msg), true
}

// Broadcaster is the source side of reliable broadcast on one node.
type Broadcaster struct {
	fab    *rdma.Fabric
	node   *rdma.Node
	cfg    Config
	backup *rdma.Region
	seq    uint64
	epoch  uint32   // configuration epoch stamped on outgoing messages
	slots  []uint64 // seq occupying each backup slot, 0 if free

	peers []*peerChan
	// waiting holds broadcasts blocked on a free backup slot.
	waiting []pendingMsg

	mRetries   *metrics.Counter // head-refresh retries on a full remote ring
	mHeadReads *metrics.Counter // remote head-counter reads
	mSlotWaits *metrics.Counter // broadcasts queued waiting for a backup slot
}

type pendingMsg struct {
	seq    uint64
	record []byte // codec-framed ring record
	label  string // trace label stamped on the record's final WR (may be "")
	onDone func()
	left   int // outstanding remote writes
}

// peerChan is the per-destination writer state.
type peerChan struct {
	peer      rdma.NodeID
	qp        *rdma.QP
	w         *ring.Writer
	queue     []*pendingMsg
	reading   bool // head read in flight
	pumpArmed bool // deferred pump queued on the CPU
}

// NewBroadcaster creates the source side on node. Setup must have run.
func NewBroadcaster(fab *rdma.Fabric, node *rdma.Node, cfg Config) *Broadcaster {
	b := &Broadcaster{
		fab:        fab,
		node:       node,
		cfg:        cfg,
		backup:     node.Region(cfg.backupRegion()),
		slots:      make([]uint64, cfg.BackupSlots),
		mRetries:   cfg.Metrics.Counter("broadcast.ring_full_retries"),
		mHeadReads: cfg.Metrics.Counter("broadcast.head_reads"),
		mSlotWaits: cfg.Metrics.Counter("broadcast.backup_slot_waits"),
	}
	for i := 0; i < fab.Size(); i++ {
		peer := rdma.NodeID(i)
		if peer == node.ID() {
			continue
		}
		b.peers = append(b.peers, &peerChan{
			peer: peer,
			qp:   node.QP(peer),
			w:    ring.NewWriter(cfg.RingCapacity),
		})
	}
	return b
}

// Broadcast reliably delivers payload to every other node. onDone, if
// non-nil, runs when every remote write has completed (and the backup slot
// has been cleared). The local node does not deliver its own messages.
func (b *Broadcaster) Broadcast(payload []byte, onDone func()) error {
	return b.BroadcastLabeled("", payload, onDone)
}

// SetEpoch installs the configuration epoch stamped on subsequent
// messages. Epochs only move forward; stale values are ignored.
func (b *Broadcaster) SetEpoch(e uint32) {
	if e > b.epoch {
		b.epoch = e
	}
}

// Epoch returns the epoch currently stamped on outgoing messages.
func (b *Broadcaster) Epoch() uint32 { return b.epoch }

// BroadcastLabeled is Broadcast with a trace label: when the fabric has a
// tracer attached, the final work request carrying this message's record is
// tagged with label, so the transport's post/wire/completion events can be
// attributed to the originating call (see rdma.WR.Label). An empty label
// records nothing.
func (b *Broadcaster) BroadcastLabeled(label string, payload []byte, onDone func()) error {
	b.seq++
	msg := encodeMessage(b.epoch, b.seq, payload)
	record, err := codec.EncodeRaw(msg)
	if err != nil {
		return err
	}
	pm := &pendingMsg{seq: b.seq, record: record, label: label, onDone: onDone, left: len(b.peers)}
	slot := int(pm.seq) % b.cfg.BackupSlots
	if b.slots[slot] != 0 {
		// Slot occupied by an older in-flight broadcast: queue until free.
		b.mSlotWaits.Inc()
		b.waiting = append(b.waiting, *pm)
		return nil
	}
	b.launch(pm)
	return nil
}

func (b *Broadcaster) launch(pm *pendingMsg) {
	slot := int(pm.seq) % b.cfg.BackupSlots
	b.slots[slot] = pm.seq
	// Write the backup before any remote write (the protocol's ordering
	// requirement); this is a local store.
	framed, err := codec.EncodeSlot(encodeMessage(b.epoch, pm.seq, pm.record), uint32(pm.seq), b.cfg.BackupSlot)
	if err != nil {
		// Oversized for the backup slot: configuration error.
		panic(fmt.Sprintf("broadcast: %v", err))
	}
	copy(b.backup.Bytes()[slot*b.cfg.BackupSlot:], framed)
	if pm.left == 0 { // single-node fabric
		b.finish(pm)
		return
	}
	for _, pc := range b.peers {
		pc.queue = append(pc.queue, pm)
		b.schedulePump(pc)
	}
}

// schedulePump arms a deferred pump as a zero-cost CPU work item. Broadcasts
// issued by work already queued on the CPU (pipelined calls) land in the
// peer queue before the pump runs, so they join the same verb chain — one
// doorbell per peer instead of one per message.
func (b *Broadcaster) schedulePump(pc *peerChan) {
	if pc.pumpArmed {
		return
	}
	pc.pumpArmed = true
	b.node.CPU.Exec(0, func() {
		pc.pumpArmed = false
		b.pump(pc)
	})
}

// pump advances a peer channel: drains every queued record the remote ring
// has room for into a single chained post (one doorbell; a message's
// ring-wrap writes ride the same chain), refreshing the cached head via a
// remote read when the ring looks full. Messages are removed from the queue
// as they are batched, so a later crash-drain in refreshHead cannot account
// them a second time.
func (b *Broadcaster) pump(pc *peerChan) {
	if b.node.Crashed() {
		return
	}
	region := b.cfg.inRegion(b.node.ID())
	var wrs []rdma.WR
	var batch []*pendingMsg
	for len(pc.queue) > 0 {
		pm := pc.queue[0]
		writes, ok := pc.w.Append(pm.record)
		if !ok {
			break
		}
		pc.queue = pc.queue[1:]
		for i, wr := range writes {
			w := rdma.WR{Region: region, Off: wr.Off, Data: wr.Data}
			if i == len(writes)-1 {
				// Label the record's final write: its landing means the
				// whole record (including any ring-wrap writes) is visible.
				w.Label = pm.label
			}
			wrs = append(wrs, w)
		}
		batch = append(batch, pm)
	}
	if len(batch) > 0 {
		msgs := batch
		// The tail completion covers the whole chain: RC ordering means
		// every batched record is in the remote ring (or the peer failed,
		// in which case the writes are accounted as done, matching the
		// crashed-peer drain below).
		pc.qp.PostChain(wrs, func(error) {
			for _, pm := range msgs {
				b.written(pm)
			}
		})
	}
	if len(pc.queue) > 0 {
		b.refreshHead(pc)
	}
}

// refreshHead reads the remote ring's head counter and retries the queue.
func (b *Broadcaster) refreshHead(pc *peerChan) {
	if pc.reading {
		return
	}
	pc.reading = true
	b.mHeadReads.Inc()
	pc.qp.Read(b.cfg.inRegion(b.node.ID()), 0, ring.HeaderSize, func(data []byte, err error) {
		pc.reading = false
		if err != nil {
			// Peer crashed: drop its queue, counting the writes as done.
			for _, pm := range pc.queue {
				b.written(pm)
			}
			pc.queue = nil
			return
		}
		before := pc.w.Free()
		pc.w.NoteHead(ring.DecodeHead(data))
		if pc.w.Free() == before {
			// No space freed yet (e.g. suspended reader): retry later.
			b.mRetries.Inc()
			b.fab.Engine().After(b.cfg.RetryDelay, func() { b.refreshHeadDone(pc) })
			return
		}
		b.pump(pc)
	})
}

func (b *Broadcaster) refreshHeadDone(pc *peerChan) {
	if len(pc.queue) > 0 {
		b.refreshHead(pc)
	}
}

// written accounts one completed remote write of pm.
func (b *Broadcaster) written(pm *pendingMsg) {
	pm.left--
	if pm.left == 0 {
		b.finish(pm)
	}
}

// finish clears the backup slot and fires the completion callback, then
// launches any broadcast waiting for the freed slot.
func (b *Broadcaster) finish(pm *pendingMsg) {
	slot := int(pm.seq) % b.cfg.BackupSlots
	if b.slots[slot] == pm.seq {
		b.slots[slot] = 0
		zero := make([]byte, b.cfg.BackupSlot)
		copy(b.backup.Bytes()[slot*b.cfg.BackupSlot:], zero)
	}
	if pm.onDone != nil {
		pm.onDone()
	}
	for i := range b.waiting {
		w := b.waiting[i]
		ws := int(w.seq) % b.cfg.BackupSlots
		if b.slots[ws] == 0 {
			b.waiting = append(b.waiting[:i], b.waiting[i+1:]...)
			wcopy := w
			b.launch(&wcopy)
			return
		}
	}
}

// Handler consumes delivered broadcast messages.
type Handler func(src rdma.NodeID, seq uint64, payload []byte)

// Receiver is the delivery side of reliable broadcast on one node.
type Receiver struct {
	fab     *rdma.Fabric
	node    *rdma.Node
	cfg     Config
	handler Handler

	readers     map[rdma.NodeID]*ring.Reader
	delivered   map[rdma.NodeID]map[uint64]bool
	low         map[rdma.NodeID]uint64 // contiguous delivery watermark per source
	minEpoch    map[rdma.NodeID]uint32 // per-source epoch floor (dynamic membership)
	pendingMin  map[rdma.NodeID]uint32 // floors awaiting drain promotion (FloorAfterDrain)
	tornSeen    uint64                 // ring torn-rejects already counted into mTorn
	staleSeen   uint64                 // ring stale-rejects already counted into mStale
	staleBackup uint64                 // stale backup slots rejected during recovery
	ticker      *sim.Ticker

	mDelivered  *metrics.Counter // messages handed to the handler
	mRecoveries *metrics.Counter // RecoverFrom sweeps started
	mRecovered  *metrics.Counter // backup slots holding a decodable pending message
	mTorn       *metrics.Counter // reads rejected by CRC validation (ring + backup)
	mStale      *metrics.Counter // records rejected by the epoch gate
}

// NewReceiver starts delivery on node, invoking handler on the node's CPU
// for every message. Setup must have run.
func NewReceiver(fab *rdma.Fabric, node *rdma.Node, cfg Config, handler Handler) *Receiver {
	r := &Receiver{
		fab:         fab,
		node:        node,
		cfg:         cfg,
		handler:     handler,
		readers:     make(map[rdma.NodeID]*ring.Reader),
		delivered:   make(map[rdma.NodeID]map[uint64]bool),
		low:         make(map[rdma.NodeID]uint64),
		minEpoch:    make(map[rdma.NodeID]uint32),
		pendingMin:  make(map[rdma.NodeID]uint32),
		mDelivered:  cfg.Metrics.Counter("broadcast.delivered"),
		mRecoveries: cfg.Metrics.Counter("broadcast.recovery_sweeps"),
		mRecovered:  cfg.Metrics.Counter("broadcast.backup_slots_recovered"),
		mTorn:       cfg.Metrics.Counter("broadcast.torn_rejects"),
		mStale:      cfg.Metrics.Counter("broadcast.stale_rejects"),
	}
	for i := 0; i < fab.Size(); i++ {
		src := rdma.NodeID(i)
		if src == node.ID() {
			continue
		}
		rd := ring.NewReader(node.Region(cfg.inRegion(src)).Bytes())
		rd.SetEpochGate(recordEpoch)
		r.readers[src] = rd
		r.delivered[src] = make(map[uint64]bool)
	}
	r.ticker = fab.Engine().NewTicker(cfg.PollPeriod, r.poll)
	return r
}

// Stop cancels the receiver's poll loop.
func (r *Receiver) Stop() { r.ticker.Cancel() }

// SetMinEpoch raises the epoch floor for one source: ring records and
// backup slots src stamped with an older configuration are rejected and
// counted instead of delivered. Call it when src leaves the configuration
// (floor = the departure epoch) so writes src posted without knowing of
// its removal cannot be delivered.
func (r *Receiver) SetMinEpoch(src rdma.NodeID, e uint32) {
	if e > r.minEpoch[src] {
		r.minEpoch[src] = e
	}
	if rd := r.readers[src]; rd != nil {
		rd.SetMinEpoch(e)
	}
}

// FloorAfterDrain schedules an epoch-floor raise for src that takes effect
// only once this receiver has drained src's inbound ring: records src
// legitimately posted (and acked) while still a member must be delivered,
// not rejected, even if this node was suspended when the membership change
// committed and only drains its backlog much later. Raising the floor on a
// timer cannot give that guarantee; draining-then-raising can, because a
// removed node's writes are refused at the NIC, so everything in the ring
// predates the revocation.
func (r *Receiver) FloorAfterDrain(src rdma.NodeID, e uint32) {
	if cur, ok := r.pendingMin[src]; (!ok || e > cur) && e > r.minEpoch[src] {
		r.pendingMin[src] = e
	}
}

// StaleRejects returns how many records the epoch gates have rejected
// across all sources (ring records and recovered backup slots).
func (r *Receiver) StaleRejects() uint64 {
	total := r.staleBackup
	for _, rd := range r.readers {
		total += rd.StaleRejects()
	}
	return total
}

func (r *Receiver) poll() {
	if r.node.Suspended() || r.node.Crashed() {
		return
	}
	r.node.CPU.Exec(r.cfg.PollCost, func() {
		validated := 0
		var torn, stale uint64
		for p := 0; p < r.fab.Size(); p++ {
			src := rdma.NodeID(p)
			rd := r.readers[src]
			if rd == nil {
				continue
			}
			drained := false
			for {
				rec, ok, err := rd.Poll()
				if err != nil || !ok {
					// An idle poll alone is not a drain proof: the reader
					// must also be quiescent — a wrap marker consumed with
					// its record still landing, or a torn record mid-heal,
					// both return idle while bytes are pending. Promoting a
					// parked floor then would stale-reject a record the
					// departed source legitimately posted before revocation.
					drained = err == nil && !ok && rd.Quiescent()
					break
				}
				validated += len(rec)
				msg, _, err := codec.DecodeRaw(rec)
				if err != nil {
					break
				}
				_, seq, payload, err := decodeMessage(msg)
				if err != nil {
					break
				}
				r.deliver(src, seq, payload)
			}
			if e, ok := r.pendingMin[src]; ok && drained {
				delete(r.pendingMin, src)
				r.SetMinEpoch(src, e)
			}
			torn += rd.TornRejects()
			stale += rd.StaleRejects()
		}
		if torn > r.tornSeen {
			r.mTorn.Add(torn - r.tornSeen)
			r.tornSeen = torn
		}
		if stale += r.staleBackup; stale > r.staleSeen {
			r.mStale.Add(stale - r.staleSeen)
			r.staleSeen = stale
		}
		if cost := r.fab.Latency().CRCCost(validated); cost > 0 {
			// The checksum compute leg of this sweep's validated reads:
			// occupy the reader CPU for the bytes re-hashed, so the cost
			// model charges single-RTT validation what it actually costs.
			r.node.CPU.Exec(cost, func() {})
		}
	})
}

// deliver hands one message to the handler if it has not been seen. The
// dedup set is compacted against a contiguous watermark so memory stays
// proportional to reordering, not to the message count.
func (r *Receiver) deliver(src rdma.NodeID, seq uint64, payload []byte) {
	if seq <= r.low[src] || r.delivered[src][seq] {
		return
	}
	r.delivered[src][seq] = true
	for r.delivered[src][r.low[src]+1] {
		r.low[src]++
		delete(r.delivered[src], r.low[src])
	}
	r.mDelivered.Inc()
	buf := append([]byte(nil), payload...)
	r.node.CPU.Exec(r.cfg.DeliverCost, func() { r.handler(src, seq, buf) })
}

// RecoverFrom reads src's backup region remotely and delivers any pending
// message this node has not seen. Call it when the failure detector
// suspects src. Under the suspension failure model src's NIC still serves
// the read; if src truly crashed the read fails and recovery is skipped
// (its in-flight messages were not delivered anywhere they can be read
// back from).
func (r *Receiver) RecoverFrom(src rdma.NodeID) {
	if src == r.node.ID() {
		return
	}
	r.mRecoveries.Inc()
	r.recoverSweep(src, backupReadRetries, make(map[int]uint32))
}

// backupReadRetries bounds the re-reads a recovery sweep earns when a
// backup slot fails CRC validation — a torn read heals within one fabric
// delay, so a handful of extra RTTs is enough; a slot still torn after
// that belongs to a source that died mid-write and carries nothing
// recoverable.
const backupReadRetries = 3

// recoverSweep reads the whole backup region and recovers every validated
// slot. A torn slot earns a bounded re-read of the region; seen maps slot
// index → slot version across those passes so a slot recovered in an
// earlier pass is not processed (and counted) again when only its torn
// neighbour needed the retry.
func (r *Receiver) recoverSweep(src rdma.NodeID, retriesLeft int, seen map[int]uint32) {
	size := r.cfg.BackupSlots * r.cfg.BackupSlot
	r.node.QP(src).Read(r.cfg.backupRegion(), 0, size, func(data []byte, err error) {
		if err != nil {
			return
		}
		tornSeen := false
		for slot := 0; slot < r.cfg.BackupSlots; slot++ {
			framed := data[slot*r.cfg.BackupSlot : (slot+1)*r.cfg.BackupSlot]
			msg, ver, derr := codec.DecodeSlot(framed)
			if derr != nil {
				if errors.Is(derr, codec.ErrTorn) {
					r.mTorn.Inc()
					tornSeen = true
				}
				continue
			}
			if seen[slot] == ver {
				continue
			}
			seen[slot] = ver
			epoch, seq, record, derr := decodeMessage(msg)
			if derr != nil {
				continue
			}
			if epoch < r.minEpoch[src] {
				// Backup slot stamped before src's departure epoch: the
				// same stale-write rejection the ring gate applies.
				r.staleBackup++
				continue
			}
			// The backup stores the framed ring record; unwrap it.
			inner, _, derr := codec.DecodeRaw(record)
			if derr != nil {
				continue
			}
			_, iseq, payload, derr := decodeMessage(inner)
			if derr != nil || iseq != seq {
				continue
			}
			r.mRecovered.Inc()
			r.deliver(src, seq, payload)
		}
		if tornSeen && retriesLeft > 0 {
			// Bounded retry-on-invalid: re-read the backups so a torn slot
			// whose interior lands momentarily is still recovered.
			r.recoverSweep(src, retriesLeft-1, seen)
		}
	})
}
