package broadcast

import (
	"testing"

	"hamband/internal/codec"
	"hamband/internal/metrics"
	"hamband/internal/rdma"
	"hamband/internal/sim"
)

// backupSlotBytes builds the exact nesting recoverSweep expects in one
// backup slot: EncodeSlot( message(seq, EncodeRaw( message(seq, payload)))).
func backupSlotBytes(t *testing.T, cfg Config, epoch uint32, seq uint64, payload []byte) []byte {
	t.Helper()
	inner := encodeMessage(epoch, seq, payload)
	record, err := codec.EncodeRaw(inner)
	if err != nil {
		t.Fatal(err)
	}
	framed, err := codec.EncodeSlot(encodeMessage(epoch, seq, record), uint32(seq), cfg.BackupSlot)
	if err != nil {
		t.Fatal(err)
	}
	return framed
}

// TestRecoverRetryDoesNotReapplySlots is the regression test for the
// recovery sweep re-processing every backup slot when a torn neighbour
// earns the region a re-read: a slot recovered in pass one must not be
// counted (or decoded and re-delivered) again by passes two through four.
// Before the seen-map dedupe, the recovered counter read one per pass.
func TestRecoverRetryDoesNotReapplySlots(t *testing.T) {
	eng := sim.NewEngine(99)
	fab := rdma.NewFabric(eng, 2, rdma.DefaultLatency())
	cfg := DefaultConfig()
	cfg.Metrics = metrics.New(eng)
	Setup(fab, cfg)

	var got []delivery
	rx := NewReceiver(fab, fab.Node(1), cfg, func(src rdma.NodeID, seq uint64, payload []byte) {
		got = append(got, delivery{src, seq, string(payload)})
	})

	// Hand-craft node 0's backup region: slot 0 holds a recoverable
	// message, slot 1 a permanently torn frame (valid seqlock version pair,
	// interior flipped so the CRC rejects it on every pass — a writer that
	// died mid-write).
	backup := fab.Node(0).Region(cfg.backupRegion()).Bytes()
	copy(backup, backupSlotBytes(t, cfg, 0, 1, []byte("survivor")))
	torn := backupSlotBytes(t, cfg, 0, 2, []byte("never lands"))
	torn[10] ^= 0xFF
	copy(backup[cfg.BackupSlot:], torn)

	eng.At(0, func() { rx.RecoverFrom(0) })
	eng.RunUntil(sim.Time(5 * sim.Millisecond))

	if len(got) != 1 || got[0].msg != "survivor" || got[0].seq != 1 {
		t.Fatalf("deliveries = %v, want exactly the survivor slot once", got)
	}
	if n := cfg.Metrics.Counter("broadcast.backup_slots_recovered").Value(); n != 1 {
		t.Fatalf("recovered counter = %d, want 1 (slot re-counted across torn retries)", n)
	}
	if n := cfg.Metrics.Counter("broadcast.torn_rejects").Value(); n < uint64(backupReadRetries) {
		t.Fatalf("torn rejects = %d; the torn slot should have earned every retry", n)
	}
}
