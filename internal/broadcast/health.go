package broadcast

import (
	"sort"

	"hamband/internal/rdma"
)

// SourceHealth is one inbound ring's introspection snapshot: the receiver's
// view of a single source. All fields are copies taken at call time; the
// health layer (package health) polls these without touching delivery
// state, so collection never perturbs the protocol schedule.
type SourceHealth struct {
	Src        rdma.NodeID
	Head       uint64 // logical bytes the reader has consumed
	Low        uint64 // contiguous delivery watermark (messages)
	TornStreak int    // consecutive CRC-rejecting polls of the stuck record
	Torn       uint64 // total CRC rejections on this ring
	Stale      uint64 // records rejected by the epoch gate
	MinEpoch   uint32 // active per-source epoch floor
	PendingMin uint32 // floor parked awaiting drain promotion (FloorAfterDrain)
	HasPending bool   // a parked floor exists
	Parked     bool   // reader quarantined (sticky)
	ParkedWhy  string // the one-shot parking diagnosis, "" while healthy
}

// Rings reports the health of every inbound ring, ordered by source. The
// snapshot is cheap (one pass over fabric-size readers, no allocation
// beyond the result slice) and read-only.
func (r *Receiver) Rings() []SourceHealth {
	out := make([]SourceHealth, 0, len(r.readers))
	for src, rd := range r.readers {
		h := SourceHealth{
			Src:        src,
			Head:       rd.Head(),
			Low:        r.low[src],
			TornStreak: rd.TornStreak(),
			Torn:       rd.TornRejects(),
			Stale:      rd.StaleRejects(),
			MinEpoch:   r.minEpoch[src],
		}
		if e, ok := r.pendingMin[src]; ok {
			h.PendingMin = e
			h.HasPending = true
		}
		if err := rd.Parked(); err != nil {
			h.Parked = true
			h.ParkedWhy = err.Error()
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// SourceRing returns the health of one inbound ring and whether this
// receiver reads from that source.
func (r *Receiver) SourceRing(src rdma.NodeID) (SourceHealth, bool) {
	for _, h := range r.Rings() {
		if h.Src == src {
			return h, true
		}
	}
	return SourceHealth{}, false
}
