package broadcast

import (
	"fmt"
	"testing"

	"hamband/internal/heartbeat"
	"hamband/internal/rdma"
	"hamband/internal/sim"
)

type delivery struct {
	src rdma.NodeID
	seq uint64
	msg string
}

func setup(n int, cfg Config) (*sim.Engine, *rdma.Fabric, []*Broadcaster, [][]delivery, []*Receiver) {
	eng := sim.NewEngine(31)
	fab := rdma.NewFabric(eng, n, rdma.DefaultLatency())
	Setup(fab, cfg)
	got := make([][]delivery, n)
	bcs := make([]*Broadcaster, n)
	rcs := make([]*Receiver, n)
	for i := 0; i < n; i++ {
		i := i
		node := fab.Node(rdma.NodeID(i))
		bcs[i] = NewBroadcaster(fab, node, cfg)
		rcs[i] = NewReceiver(fab, node, cfg, func(src rdma.NodeID, seq uint64, payload []byte) {
			got[i] = append(got[i], delivery{src, seq, string(payload)})
		})
	}
	return eng, fab, bcs, got, rcs
}

func TestBroadcastDeliversToAllOthers(t *testing.T) {
	cfg := DefaultConfig()
	eng, _, bcs, got, _ := setup(3, cfg)
	done := false
	eng.At(0, func() {
		if err := bcs[0].Broadcast([]byte("hello"), func() { done = true }); err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(sim.Time(sim.Millisecond))
	if !done {
		t.Fatal("completion callback never fired")
	}
	for i := 1; i < 3; i++ {
		if len(got[i]) != 1 || got[i][0].msg != "hello" || got[i][0].src != 0 {
			t.Fatalf("node %d deliveries = %v", i, got[i])
		}
	}
	if len(got[0]) != 0 {
		t.Fatal("source delivered its own message")
	}
}

func TestBroadcastFIFOPerSource(t *testing.T) {
	cfg := DefaultConfig()
	eng, _, bcs, got, _ := setup(2, cfg)
	const n = 200
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			if err := bcs[0].Broadcast([]byte(fmt.Sprintf("m%d", i)), nil); err != nil {
				t.Error(err)
			}
		}
	})
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	if len(got[1]) != n {
		t.Fatalf("delivered %d messages, want %d", len(got[1]), n)
	}
	for i, d := range got[1] {
		if d.seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d (FIFO violated)", i, d.seq)
		}
	}
}

func TestBroadcastManySourcesConcurrently(t *testing.T) {
	cfg := DefaultConfig()
	eng, _, bcs, got, _ := setup(4, cfg)
	const per = 50
	eng.At(0, func() {
		for s := 0; s < 4; s++ {
			for i := 0; i < per; i++ {
				if err := bcs[s].Broadcast([]byte(fmt.Sprintf("s%d-%d", s, i)), nil); err != nil {
					t.Error(err)
				}
			}
		}
	})
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	for i := 0; i < 4; i++ {
		if len(got[i]) != 3*per {
			t.Fatalf("node %d delivered %d, want %d", i, len(got[i]), 3*per)
		}
	}
}

func TestBackupSlotClearedAfterCompletion(t *testing.T) {
	cfg := DefaultConfig()
	eng, fab, bcs, _, _ := setup(2, cfg)
	eng.At(0, func() { bcs[0].Broadcast([]byte("x"), nil) })
	eng.RunUntil(sim.Time(sim.Millisecond))
	backup := fab.Node(0).Region("rb-backup").Bytes()
	for _, b := range backup {
		if b != 0 {
			t.Fatal("backup region not cleared after completion")
		}
	}
}

func TestAgreementUnderSourceSuspension(t *testing.T) {
	// The paper's agreement scenario: the source fails mid-fan-out. The
	// source suspends after node 1's doorbell has rung but before node 2's
	// chain is posted, so only node 1's write goes out; node 2's is stuck
	// behind the suspended CPU. The message must be recoverable from the
	// source's backup region, which its still-alive NIC serves.
	cfg := DefaultConfig()
	eng, fab, bcs, got, rcs := setup(3, cfg)
	eng.At(0, func() { bcs[0].Broadcast([]byte("pending"), nil) })
	// Node 1's post is dispatched within the first PostCost of virtual
	// time; suspending inside that window leaves node 2's post queued.
	eng.At(100, func() { fab.Node(0).Suspend() })
	eng.RunUntil(sim.Time(sim.Millisecond))
	if len(got[1]) != 1 {
		t.Fatalf("node 1 (write already on the wire) got %d deliveries, want 1", len(got[1]))
	}
	if len(got[2]) != 0 {
		t.Fatal("node 2's ring write should be stuck behind the suspended CPU")
	}
	// Agreement is now at stake: node 1 delivered, node 2 did not. The
	// failure detector would suspect node 0; survivors recover.
	eng.At(eng.Now(), func() {
		rcs[1].RecoverFrom(0)
		rcs[2].RecoverFrom(0)
	})
	eng.RunUntil(eng.Now() + sim.Time(sim.Millisecond))
	for _, i := range []int{1, 2} {
		if len(got[i]) != 1 || got[i][0].msg != "pending" {
			t.Fatalf("node %d deliveries after recovery = %v, want exactly the pending message", i, got[i])
		}
	}
}

func TestRecoveryDoesNotDuplicate(t *testing.T) {
	cfg := DefaultConfig()
	eng, _, bcs, got, rcs := setup(2, cfg)
	eng.At(0, func() { bcs[0].Broadcast([]byte("m"), nil) })
	// Normal delivery happens; then a (spurious) suspicion triggers
	// recovery, which must not deliver the message twice. The backup slot
	// was already cleared, but even a racing recovery read dedups by seq.
	eng.At(sim.Time(200*sim.Microsecond), func() { rcs[1].RecoverFrom(0) })
	eng.RunUntil(sim.Time(2 * sim.Millisecond))
	if len(got[1]) != 1 {
		t.Fatalf("delivered %d times, want exactly once", len(got[1]))
	}
}

func TestRecoveryFromCrashedSourceIsSafe(t *testing.T) {
	cfg := DefaultConfig()
	eng, fab, bcs, got, rcs := setup(2, cfg)
	eng.At(0, func() {
		bcs[0].Broadcast([]byte("m"), nil)
		fab.Node(0).Crash()
	})
	eng.At(sim.Time(500*sim.Microsecond), func() { rcs[1].RecoverFrom(0) })
	eng.RunUntil(sim.Time(2 * sim.Millisecond))
	// No assertion on delivery (a crashed NIC loses in-flight state);
	// recovery must simply not wedge or panic.
	_ = got
}

func TestIntegrationWithFailureDetector(t *testing.T) {
	// End-to-end: heartbeats + detector + recovery, as wired in Hamband.
	cfg := DefaultConfig()
	eng, fab, bcs, got, rcs := setup(3, cfg)
	hbCfg := heartbeat.DefaultConfig()
	for i := 0; i < 3; i++ {
		heartbeat.Register(fab.Node(rdma.NodeID(i)))
	}
	for i := 0; i < 3; i++ {
		i := i
		heartbeat.NewBeater(eng, fab.Node(rdma.NodeID(i)), hbCfg.BeatPeriod)
		d := heartbeat.NewDetector(fab, fab.Node(rdma.NodeID(i)), hbCfg)
		d.OnSuspect = func(peer rdma.NodeID) { rcs[i].RecoverFrom(peer) }
	}
	eng.At(0, func() {
		bcs[0].Broadcast([]byte("survives"), nil)
		fab.Node(0).Suspend()
	})
	eng.RunUntil(sim.Time(5 * sim.Millisecond))
	for _, i := range []int{1, 2} {
		if len(got[i]) != 1 || got[i][0].msg != "survives" {
			t.Fatalf("node %d: deliveries %v; agreement violated", i, got[i])
		}
	}
}

func TestRingBackpressure(t *testing.T) {
	// A tiny ring forces the writer through the head-refresh path.
	cfg := DefaultConfig()
	cfg.RingCapacity = 256
	eng, _, bcs, got, _ := setup(2, cfg)
	const n = 100
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			bcs[0].Broadcast([]byte("0123456789"), nil)
		}
	})
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	if len(got[1]) != n {
		t.Fatalf("delivered %d, want %d under backpressure", len(got[1]), n)
	}
}

func TestCrashedPeerMidHeadReadDrainsQueue(t *testing.T) {
	// Satellite regression for refreshHead's crashed-peer path: a tiny
	// ring and a suspended receiver push the writer into head-refresh
	// retries with a backlog split between an in-flight chain and queued
	// messages. Crashing the peer mid-read must complete every broadcast
	// exactly once — the chain's tail completion accounts the batched
	// messages, the drain accounts the queued ones — and must not wedge
	// the channel for later broadcasts.
	cfg := DefaultConfig()
	cfg.RingCapacity = 256
	eng, fab, bcs, _, _ := setup(2, cfg)
	const n = 30
	done := make([]int, n+1)
	eng.At(0, func() {
		fab.Node(1).Suspend() // receiver stops polling: the ring fills
		for i := 0; i < n; i++ {
			i := i
			bcs[0].Broadcast([]byte("0123456789"), func() { done[i]++ })
		}
	})
	eng.At(sim.Time(50*sim.Microsecond), func() { fab.Node(1).Crash() })
	// A broadcast issued after the crash must also complete (via the
	// failure path), proving the channel did not deadlock.
	eng.At(sim.Time(500*sim.Microsecond), func() {
		bcs[0].Broadcast([]byte("after-crash"), func() { done[n]++ })
	})
	eng.RunUntil(sim.Time(20 * sim.Millisecond))
	for i, c := range done {
		if c != 1 {
			t.Fatalf("broadcast %d completed %d times, want exactly once", i, c)
		}
	}
}

func TestRecoverFromDoesNotDuplicateInFlightChain(t *testing.T) {
	// Satellite regression: a recovery sweep racing a chained fan-out
	// still in flight must not deliver any message twice. The broadcasts
	// are posted as one chain per peer; RecoverFrom reads the backup
	// region while the chain is on the wire, so both the recovered copy
	// and the ring copy reach the receiver — dedup keeps exactly one.
	cfg := DefaultConfig()
	eng, _, bcs, got, rcs := setup(3, cfg)
	const n = 5
	eng.At(0, func() {
		for i := 0; i < n; i++ {
			bcs[0].Broadcast([]byte(fmt.Sprintf("m%d", i)), nil)
		}
	})
	// The chain lands ~1 µs after posting; a recovery read issued now
	// observes the still-occupied backup slots.
	eng.At(sim.Time(1*sim.Microsecond), func() {
		rcs[1].RecoverFrom(0)
		rcs[2].RecoverFrom(0)
	})
	eng.RunUntil(sim.Time(5 * sim.Millisecond))
	for _, i := range []int{1, 2} {
		if len(got[i]) != n {
			t.Fatalf("node %d delivered %d messages, want %d (no loss, no duplicates)", i, len(got[i]), n)
		}
		seen := make(map[uint64]bool)
		for _, d := range got[i] {
			if seen[d.seq] {
				t.Fatalf("node %d delivered seq %d twice", i, d.seq)
			}
			seen[d.seq] = true
		}
	}
}
