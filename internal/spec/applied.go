package spec

// AppliedMap is the map A of §3.3: for each process p and update method u,
// the number of calls on u issued by p that have been applied locally.
// It is stored as a dense [process][method] matrix, exactly the integer
// arrays the implementation section describes.
type AppliedMap [][]uint32

// NewAppliedMap returns a zeroed applied map for nprocs processes and
// nmethods methods.
func NewAppliedMap(nprocs, nmethods int) AppliedMap {
	a := make(AppliedMap, nprocs)
	for i := range a {
		a[i] = make([]uint32, nmethods)
	}
	return a
}

// Get returns A(p, u).
func (a AppliedMap) Get(p ProcID, u MethodID) uint32 { return a[p][u] }

// Inc advances A(p, u) by one and returns the new count.
func (a AppliedMap) Inc(p ProcID, u MethodID) uint32 {
	a[p][u]++
	return a[p][u]
}

// Set stores A(p, u) = n.
func (a AppliedMap) Set(p ProcID, u MethodID, n uint32) { a[p][u] = n }

// Clone deep-copies the map.
func (a AppliedMap) Clone() AppliedMap {
	b := make(AppliedMap, len(a))
	for i := range a {
		b[i] = append([]uint32(nil), a[i]...)
	}
	return b
}

// Project extracts the dependency record D = A|Dep(u) shipped with a call
// on u: for every process, the applied counts of u's dependency methods in
// DependsOn order. The result is the flattened [process][depIndex] vector
// the implementation serializes as variable-sized dependency arrays.
func (a AppliedMap) Project(deps []MethodID) DepVec {
	if len(deps) == 0 {
		return nil
	}
	d := make(DepVec, 0, len(a)*len(deps))
	for p := range a {
		for _, u := range deps {
			d = append(d, a[p][u])
		}
	}
	return d
}

// DepVec is a call's dependency record: applied counts of the call's
// dependency methods, flattened as [process][depIndex]. A nil DepVec means
// the call is dependence-free.
type DepVec []uint32

// Satisfies reports D ≤ A pointwise: every dependency count in d is covered
// by the applied map. deps names the methods each column refers to.
func (a AppliedMap) Satisfies(d DepVec, deps []MethodID) bool {
	if len(d) == 0 {
		return true
	}
	k := len(deps)
	for p := range a {
		for i, u := range deps {
			if d[p*k+i] > a[p][u] {
				return false
			}
		}
	}
	return true
}

// Clone deep-copies the vector.
func (d DepVec) Clone() DepVec { return append(DepVec(nil), d...) }
