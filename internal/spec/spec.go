// Package spec captures the paper's object data types (§3.1): a class is a
// tuple ⟨Σ, I, ū:=d̄, q̄:=d̄⟩ of a state type, an integrity invariant, and
// update and query method definitions. The package also carries the
// coordination relations — state conflict, permissible conflict, and
// dependency — at both the call level (used by the operational semantics in
// packages wrdt and rdmawrdt) and the method level (used by the runtime),
// and derives from them the analysis the runtime consumes: the conflict
// graph, synchronization groups, summarization groups, dependency sets and
// the three method categories of §3.3.
package spec

import (
	"fmt"
	"strings"
)

// MethodID indexes a method within a class. IDs are dense, starting at 0,
// covering update and query methods alike.
type MethodID int

// ProcID identifies a replica process. IDs are dense, starting at 0.
type ProcID int

// MethodKind distinguishes update methods from query methods.
type MethodKind int

// Method kinds.
const (
	Update MethodKind = iota
	Query
)

// Args carries a method call's arguments: a vector of integers and a vector
// of strings. The flat shape keeps calls cheap to copy, compare and
// serialize (package codec).
type Args struct {
	I []int64
	S []string
}

// ArgsI builds integer-only arguments.
func ArgsI(vals ...int64) Args { return Args{I: vals} }

// ArgsS builds string-only arguments.
func ArgsS(vals ...string) Args { return Args{S: vals} }

// Clone returns a deep copy of the arguments.
func (a Args) Clone() Args {
	return Args{I: append([]int64(nil), a.I...), S: append([]string(nil), a.S...)}
}

// Equal reports whether two argument vectors are identical.
func (a Args) Equal(b Args) bool {
	if len(a.I) != len(b.I) || len(a.S) != len(b.S) {
		return false
	}
	for i := range a.I {
		if a.I[i] != b.I[i] {
			return false
		}
	}
	for i := range a.S {
		if a.S[i] != b.S[i] {
			return false
		}
	}
	return true
}

// String formats the arguments as a call-argument list.
func (a Args) String() string {
	parts := make([]string, 0, len(a.I)+len(a.S))
	for _, v := range a.I {
		parts = append(parts, fmt.Sprint(v))
	}
	for _, s := range a.S {
		parts = append(parts, fmt.Sprintf("%q", s))
	}
	return strings.Join(parts, ",")
}

// Call is an update method call instance u(v)_{p,r}: the method, its
// arguments, the issuing process, and the per-process issue sequence number.
// (Proc, Seq) together form the paper's unique request identifier r.
type Call struct {
	Method MethodID
	Args   Args
	Proc   ProcID
	Seq    uint64
}

// SameRequest reports whether two calls denote the same request.
func (c Call) SameRequest(d Call) bool { return c.Proc == d.Proc && c.Seq == d.Seq }

// String formats the call for diagnostics, e.g. "withdraw(5)@p1#3".
func (c Call) String() string {
	return fmt.Sprintf("m%d(%s)@p%d#%d", c.Method, c.Args, c.Proc, c.Seq)
}

// Format renders the call with its method name from cls.
func (c Call) Format(cls *Class) string {
	return fmt.Sprintf("%s(%s)@p%d#%d", cls.Methods[c.Method].Name, c.Args, c.Proc, c.Seq)
}

// State is the object state Σ. Implementations are concrete per data type
// (package crdt, package schema).
type State interface {
	// Clone returns a deep copy; the operational semantics replicate and
	// fork states freely.
	Clone() State
	// Equal reports semantic state equality; used by the convergence
	// checkers.
	Equal(State) bool
}

// Method is one method definition. Update methods have Apply (the function
// λx,σ.e from parameter and pre-state to post-state, here in mutating
// form); query methods have Eval.
type Method struct {
	Name string
	Kind MethodKind

	// Apply executes an update call against the state in place.
	Apply func(State, Args)
	// Eval executes a query against the state and returns its value.
	Eval func(State, Args) any
}

// Relations declares the call-level coordination relations of §3.2. The
// functions express the *declared* analysis results (in the paper these come
// from Hamsaz-style solver analysis); CheckRelations validates them against
// their semantic definitions by randomized testing.
type Relations struct {
	// SCommute reports c1 ⇔_S c2: applying the calls in either order
	// yields the same state.
	SCommute func(c1, c2 Call) bool
	// InvariantSufficient reports that c is permissible in every state
	// satisfying the invariant.
	InvariantSufficient func(c Call) bool
	// PRCommute reports c1 ▷_P c2: if c1 is permissible in σ it remains
	// permissible in c2(σ).
	PRCommute func(c1, c2 Call) bool
	// PLCommute reports c2 ◁_P c1: if c2 is permissible in c1(σ) it is
	// permissible in σ too.
	PLCommute func(c2, c1 Call) bool
}

// PConcur reports whether c1 P-concurs with c2: c1 is invariant-sufficient
// or P-R-commutes with c2.
func (r Relations) PConcur(c1, c2 Call) bool {
	return r.InvariantSufficient(c1) || r.PRCommute(c1, c2)
}

// Conflict reports c1 ⋈ c2: the calls fail to S-commute or fail to
// P-concur in either direction. Conflicting calls must synchronize.
func (r Relations) Conflict(c1, c2 Call) bool {
	return !r.SCommute(c1, c2) || !r.PConcur(c1, c2) || !r.PConcur(c2, c1)
}

// Independent reports c2 ⫫ c1: c2 is invariant-sufficient or P-L-commutes
// with c1.
func (r Relations) Independent(c2, c1 Call) bool {
	return r.InvariantSufficient(c2) || r.PLCommute(c2, c1)
}

// Dependent reports c2 ⋩ c1: c2's permissibility may rely on c1 having
// executed before it.
func (r Relations) Dependent(c2, c1 Call) bool { return !r.Independent(c2, c1) }

// SumGroup is a summarization group: a set of update methods whose calls
// are closed under summarization (§3.3).
type SumGroup struct {
	Name    string
	Methods []MethodID
	// Identity returns the group's neutral call (e.g. deposit(0)); the
	// initial content of every summary slot.
	Identity func() Call
	// Summarize combines two calls into one whose effect equals applying
	// first then second.
	Summarize func(first, second Call) Call
}

// Generators produce random states and calls for property testing and
// workload generation. Every class provides them.
type Generators struct {
	// State generates a random state satisfying the invariant.
	State func(r Rand) State
	// Call generates a random call on method u.
	Call func(r Rand, u MethodID) Call
}

// Rand is the subset of *math/rand.Rand the generators need; an interface
// keeps spec decoupled from a concrete source.
type Rand interface {
	Intn(n int) int
	Int63() int64
	Float64() float64
}

// Class is a replicated object data type together with its declared
// coordination relations and summarization structure.
type Class struct {
	Name    string
	Methods []Method
	// NewState returns the initial state σ0, which must satisfy the
	// invariant.
	NewState func() State
	// Invariant is the integrity property I.
	Invariant func(State) bool
	// TrivialInvariant declares that Invariant is the constant true (the
	// CRDT special case); runtimes skip permissibility checks when set.
	TrivialInvariant bool

	// Rel declares the call-level relations.
	Rel Relations

	// ConflictsWith declares the method-level conflict graph: for each
	// update method, the methods it conflicts with (undirected; self-loops
	// allowed, as withdraw/withdraw in the account example).
	ConflictsWith map[MethodID][]MethodID
	// DependsOn declares Dep(u) for each update method.
	DependsOn map[MethodID][]MethodID
	// SumGroups declares the summarization groups.
	SumGroups []SumGroup

	// Gen provides random state/call generators for testing and workloads.
	Gen Generators
}

// Permissible reports P(σ, c): the invariant holds after applying c to a
// copy of σ. The argument state is not modified.
func (c *Class) Permissible(sigma State, call Call) bool {
	post := sigma.Clone()
	c.Methods[call.Method].Apply(post, call.Args)
	return c.Invariant(post)
}

// ApplyCall applies an update call to the state in place.
func (c *Class) ApplyCall(sigma State, call Call) {
	c.Methods[call.Method].Apply(sigma, call.Args)
}

// UpdateMethods returns the IDs of the class's update methods.
func (c *Class) UpdateMethods() []MethodID {
	var out []MethodID
	for i, m := range c.Methods {
		if m.Kind == Update {
			out = append(out, MethodID(i))
		}
	}
	return out
}

// QueryMethods returns the IDs of the class's query methods.
func (c *Class) QueryMethods() []MethodID {
	var out []MethodID
	for i, m := range c.Methods {
		if m.Kind == Query {
			out = append(out, MethodID(i))
		}
	}
	return out
}

// MethodByName returns the ID of the named method; it panics if absent,
// since lookups by name happen only in test and example setup code.
func (c *Class) MethodByName(name string) MethodID {
	for i, m := range c.Methods {
		if m.Name == name {
			return MethodID(i)
		}
	}
	panic(fmt.Sprintf("spec: class %s has no method %q", c.Name, name))
}
