package spec_test

import (
	"math/rand"
	"testing"

	"hamband/internal/crdt"
	"hamband/internal/spec"
)

func TestArgsCloneAndEqual(t *testing.T) {
	a := spec.Args{I: []int64{1, 2}, S: []string{"x"}}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.I[0] = 99
	if a.I[0] != 1 {
		t.Fatal("clone shares backing array")
	}
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(spec.Args{I: []int64{1, 2}}) {
		t.Fatal("args with different string vectors reported equal")
	}
}

func TestCallStringAndFormat(t *testing.T) {
	cls := crdt.NewAccount()
	c := spec.Call{Method: crdt.AccountWithdraw, Args: spec.ArgsI(5), Proc: 1, Seq: 3}
	if got := c.Format(cls); got != "withdraw(5)@p1#3" {
		t.Fatalf("Format = %q", got)
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
	if !c.SameRequest(spec.Call{Proc: 1, Seq: 3}) {
		t.Fatal("SameRequest should match on (proc, seq)")
	}
}

func TestPermissible(t *testing.T) {
	cls := crdt.NewAccount()
	s := &crdt.AccountState{Balance: 5}
	if !cls.Permissible(s, spec.Call{Method: crdt.AccountWithdraw, Args: spec.ArgsI(5)}) {
		t.Fatal("withdraw(5) on balance 5 should be permissible")
	}
	if cls.Permissible(s, spec.Call{Method: crdt.AccountWithdraw, Args: spec.ArgsI(6)}) {
		t.Fatal("withdraw(6) on balance 5 should be impermissible")
	}
	if s.Balance != 5 {
		t.Fatal("Permissible mutated its argument state")
	}
}

func TestAnalyzeAccount(t *testing.T) {
	cls := crdt.NewAccount()
	a, err := spec.Analyze(cls)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Category[crdt.AccountDeposit]; got != spec.CatReducible {
		t.Fatalf("deposit category = %v, want reducible", got)
	}
	if got := a.Category[crdt.AccountWithdraw]; got != spec.CatConflicting {
		t.Fatalf("withdraw category = %v, want conflicting", got)
	}
	if got := a.Category[crdt.AccountBalance]; got != spec.CatQuery {
		t.Fatalf("balance category = %v, want query", got)
	}
	if len(a.SyncGroups) != 1 || len(a.SyncGroups[0]) != 1 || a.SyncGroups[0][0] != crdt.AccountWithdraw {
		t.Fatalf("sync groups = %v, want [[withdraw]]", a.SyncGroups)
	}
	if a.SyncGroupOf[crdt.AccountDeposit] != spec.NoGroup {
		t.Fatal("deposit should not be in a sync group")
	}
	deps := a.DependsOn[crdt.AccountWithdraw]
	if len(deps) != 1 || deps[0] != crdt.AccountDeposit {
		t.Fatalf("Dep(withdraw) = %v, want [deposit]", deps)
	}
	if a.Summary() == "" {
		t.Fatal("empty analysis summary")
	}
}

func TestAnalyzeCRDTsAllConflictFree(t *testing.T) {
	for _, cls := range []*spec.Class{crdt.NewCounter(), crdt.NewLWW(), crdt.NewGSet()} {
		a := spec.MustAnalyze(cls)
		if len(a.SyncGroups) != 0 {
			t.Errorf("%s: unexpected sync groups %v", cls.Name, a.SyncGroups)
		}
		for _, u := range cls.UpdateMethods() {
			if a.Category[u] != spec.CatReducible {
				t.Errorf("%s.%s category = %v, want reducible",
					cls.Name, cls.Methods[u].Name, a.Category[u])
			}
		}
	}
	for _, cls := range []*spec.Class{crdt.NewORSet(), crdt.NewCart(), crdt.NewGSetBuffered()} {
		a := spec.MustAnalyze(cls)
		for _, u := range cls.UpdateMethods() {
			if a.Category[u] != spec.CatIrreducibleFree {
				t.Errorf("%s.%s category = %v, want irreducible conflict-free",
					cls.Name, cls.Methods[u].Name, a.Category[u])
			}
		}
	}
}

func TestAnalyzeSyncGroupConnectivity(t *testing.T) {
	// Methods 0-1 conflict, 1-2 conflict, 3 conflicts with itself:
	// components {0,1,2} and {3}.
	mk := func() spec.Method {
		return spec.Method{Name: "m", Kind: spec.Update, Apply: func(spec.State, spec.Args) {}}
	}
	cls := &spec.Class{
		Name:      "graph",
		Methods:   []spec.Method{mk(), mk(), mk(), mk(), mk()},
		NewState:  func() spec.State { return &crdt.CounterState{} },
		Invariant: func(spec.State) bool { return true },
		ConflictsWith: map[spec.MethodID][]spec.MethodID{
			0: {1},
			1: {2},
			3: {3},
		},
	}
	a, err := spec.Analyze(cls)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SyncGroups) != 2 {
		t.Fatalf("groups = %v, want 2 components", a.SyncGroups)
	}
	if a.SyncGroupOf[0] != a.SyncGroupOf[1] || a.SyncGroupOf[1] != a.SyncGroupOf[2] {
		t.Fatalf("0,1,2 should share a group: %v", a.SyncGroupOf)
	}
	if a.SyncGroupOf[3] == a.SyncGroupOf[0] || a.SyncGroupOf[3] == spec.NoGroup {
		t.Fatalf("3 should have its own group: %v", a.SyncGroupOf)
	}
	if a.SyncGroupOf[4] != spec.NoGroup {
		t.Fatalf("4 should be conflict-free: %v", a.SyncGroupOf)
	}
	if a.Category[4] != spec.CatIrreducibleFree {
		t.Fatalf("4 has no sum group; category = %v", a.Category[4])
	}
}

func TestAnalyzeRejectsIllFormedClasses(t *testing.T) {
	base := func() *spec.Class {
		cls := crdt.NewAccount()
		return cls
	}
	cases := []struct {
		name   string
		mutate func(*spec.Class)
	}{
		{"conflict with query", func(c *spec.Class) {
			c.ConflictsWith[crdt.AccountWithdraw] = []spec.MethodID{crdt.AccountBalance}
		}},
		{"dependency on query", func(c *spec.Class) {
			c.DependsOn[crdt.AccountWithdraw] = []spec.MethodID{crdt.AccountBalance}
		}},
		{"sum group with query", func(c *spec.Class) {
			c.SumGroups[0].Methods = []spec.MethodID{crdt.AccountBalance}
		}},
		{"sum group without summarize", func(c *spec.Class) {
			c.SumGroups[0].Summarize = nil
		}},
		{"method in two sum groups", func(c *spec.Class) {
			c.SumGroups = append(c.SumGroups, c.SumGroups[0])
		}},
		{"reducible sharing group with conflicting", func(c *spec.Class) {
			c.SumGroups[0].Methods = []spec.MethodID{crdt.AccountDeposit, crdt.AccountWithdraw}
		}},
	}
	for _, tc := range cases {
		cls := base()
		tc.mutate(cls)
		if _, err := spec.Analyze(cls); err == nil {
			t.Errorf("%s: Analyze accepted an ill-formed class", tc.name)
		}
	}
}

func TestAppliedMapProjectAndSatisfies(t *testing.T) {
	a := spec.NewAppliedMap(2, 3)
	a.Inc(0, 1)
	a.Inc(0, 1)
	a.Inc(1, 2)
	deps := []spec.MethodID{1, 2}
	d := a.Project(deps)
	if len(d) != 4 {
		t.Fatalf("projection length = %d, want 4", len(d))
	}
	if !a.Satisfies(d, deps) {
		t.Fatal("map should satisfy its own projection")
	}
	b := spec.NewAppliedMap(2, 3)
	if b.Satisfies(d, deps) {
		t.Fatal("zero map should not satisfy a non-zero projection")
	}
	b.Set(0, 1, 2)
	b.Set(1, 2, 1)
	if !b.Satisfies(d, deps) {
		t.Fatal("pointwise-equal map should satisfy the projection")
	}
	b.Set(1, 2, 0)
	if b.Satisfies(d, deps) {
		t.Fatal("map lagging in one cell should not satisfy")
	}
	if !b.Satisfies(nil, nil) {
		t.Fatal("empty dependency record should always be satisfied")
	}
}

func TestAppliedMapClone(t *testing.T) {
	a := spec.NewAppliedMap(1, 2)
	a.Inc(0, 0)
	b := a.Clone()
	b.Inc(0, 0)
	if a.Get(0, 0) != 1 || b.Get(0, 0) != 2 {
		t.Fatal("clone shares storage")
	}
}

func TestCheckRelationsAllClasses(t *testing.T) {
	classes := []*spec.Class{
		crdt.NewCounter(), crdt.NewLWW(), crdt.NewGSet(), crdt.NewGSetBuffered(),
		crdt.NewORSet(), crdt.NewCart(), crdt.NewAccount(), crdt.NewBankMap(),
		crdt.NewPNCounter(), crdt.NewTwoPSet(), crdt.NewRGA(), crdt.NewLWWMap(), crdt.NewMVRegister(3),
	}
	for _, cls := range classes {
		r := rand.New(rand.NewSource(11))
		if err := spec.CheckRelations(cls, r, 400); err != nil {
			t.Errorf("%s: %v", cls.Name, err)
		}
	}
}

func TestCheckRelationsCatchesBadDeclarations(t *testing.T) {
	// Declare withdraw/withdraw conflict-free: the checker must object
	// (two positive withdrawals fail to P-concur yet have no edge).
	cls := crdt.NewAccount()
	cls.ConflictsWith = map[spec.MethodID][]spec.MethodID{}
	r := rand.New(rand.NewSource(5))
	if err := spec.CheckRelations(cls, r, 500); err == nil {
		t.Fatal("checker accepted a missing conflict edge")
	}

	// Declare withdraw dependence-free: the checker must object.
	cls2 := crdt.NewAccount()
	cls2.DependsOn = map[spec.MethodID][]spec.MethodID{}
	if err := spec.CheckRelations(cls2, rand.New(rand.NewSource(5)), 500); err == nil {
		t.Fatal("checker accepted a missing dependency edge")
	}

	// Declare withdraw invariant-sufficient: the checker must object.
	cls3 := crdt.NewAccount()
	cls3.Rel.InvariantSufficient = func(spec.Call) bool { return true }
	if err := spec.CheckRelations(cls3, rand.New(rand.NewSource(5)), 500); err == nil {
		t.Fatal("checker accepted a bogus invariant-sufficiency claim")
	}

	// A wrong Summarize must be caught.
	cls4 := crdt.NewCounter()
	cls4.SumGroups[0].Summarize = func(a, b spec.Call) spec.Call {
		return spec.Call{Method: crdt.CounterAdd, Args: spec.ArgsI(a.Args.I[0] - b.Args.I[0])}
	}
	if err := spec.CheckRelations(cls4, rand.New(rand.NewSource(5)), 500); err == nil {
		t.Fatal("checker accepted a wrong Summarize")
	}

	// A false S-commute claim must be caught: make "add" non-commutative
	// by overwriting instead of adding.
	cls5 := crdt.NewCounter()
	cls5.Methods[crdt.CounterAdd].Apply = func(s spec.State, a spec.Args) {
		s.(*crdt.CounterState).V = a.I[0]
	}
	cls5.SumGroups = nil
	if err := spec.CheckRelations(cls5, rand.New(rand.NewSource(5)), 500); err == nil {
		t.Fatal("checker accepted a false S-commute claim")
	}
}

func TestCategoryString(t *testing.T) {
	for _, c := range []spec.Category{spec.CatReducible, spec.CatIrreducibleFree, spec.CatConflicting, spec.CatQuery} {
		if c.String() == "" {
			t.Fatalf("category %d has empty name", int(c))
		}
	}
	if spec.Category(99).String() == "" {
		t.Fatal("unknown category should still format")
	}
}

func TestMethodByName(t *testing.T) {
	cls := crdt.NewAccount()
	if cls.MethodByName("withdraw") != crdt.AccountWithdraw {
		t.Fatal("MethodByName(withdraw) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MethodByName on missing name should panic")
		}
	}()
	cls.MethodByName("nope")
}

func TestUpdateAndQueryMethods(t *testing.T) {
	cls := crdt.NewAccount()
	ups := cls.UpdateMethods()
	qs := cls.QueryMethods()
	if len(ups) != 2 || len(qs) != 1 {
		t.Fatalf("updates = %v, queries = %v", ups, qs)
	}
}

func TestDerivedRelationOperators(t *testing.T) {
	// Direct unit tests of the §3.2 derivations over the account's
	// declared primitives.
	rel := crdt.NewAccount().Rel
	dep := func(n int64) spec.Call {
		return spec.Call{Method: crdt.AccountDeposit, Args: spec.ArgsI(n)}
	}
	wdr := func(n int64) spec.Call {
		return spec.Call{Method: crdt.AccountWithdraw, Args: spec.ArgsI(n)}
	}

	// P-concurrence: invariant sufficiency OR ▷_P.
	if !rel.PConcur(dep(5), wdr(5)) {
		t.Fatal("deposit must P-concur with anything (invariant-sufficient)")
	}
	if !rel.PConcur(wdr(5), dep(5)) {
		t.Fatal("withdraw ▷_P deposit must make them P-concur")
	}
	if rel.PConcur(wdr(5), wdr(5)) {
		t.Fatal("two positive withdrawals must not P-concur")
	}

	// Conflict: S-commute failure or P-concurrence failure either way.
	if !rel.Conflict(wdr(5), wdr(3)) {
		t.Fatal("withdraw/withdraw must conflict")
	}
	if rel.Conflict(dep(5), wdr(3)) {
		t.Fatal("deposit/withdraw must not conflict")
	}
	if rel.Conflict(dep(5), dep(3)) {
		t.Fatal("deposit/deposit must not conflict")
	}
	// Zero amounts are invariant-sufficient: no conflict.
	if rel.Conflict(wdr(0), wdr(5)) {
		t.Fatal("zero withdrawal must not conflict")
	}

	// Dependency: ¬(invariant-sufficient ∨ ◁_P).
	if !rel.Dependent(wdr(5), dep(3)) {
		t.Fatal("withdraw must depend on deposit")
	}
	if rel.Dependent(wdr(5), wdr(3)) {
		t.Fatal("withdraw must not depend on withdraw")
	}
	if rel.Dependent(dep(5), dep(3)) {
		t.Fatal("deposit must not depend on anything")
	}
	if !rel.Independent(dep(5), wdr(3)) {
		t.Fatal("Independent must be the negation of Dependent")
	}
}
