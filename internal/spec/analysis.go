package spec

import "fmt"

// Category classifies a method per §3.3 of the paper.
type Category int

// Method categories. Reducible methods are conflict-free, dependence-free
// and summarizable; irreducible conflict-free methods avoid synchronization
// but travel through buffers; conflicting methods are ordered by their
// synchronization group's leader.
const (
	CatReducible Category = iota
	CatIrreducibleFree
	CatConflicting
	CatQuery
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatReducible:
		return "reducible"
	case CatIrreducibleFree:
		return "irreducible-conflict-free"
	case CatConflicting:
		return "conflicting"
	case CatQuery:
		return "query"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// NoGroup marks a method that belongs to no synchronization or
// summarization group.
const NoGroup = -1

// Analysis is the coordination analysis a Hamband node stores (§4
// "Meta-data"): the synchronization groups, the per-method dependency sets,
// the summarization groups and the derived method categories.
type Analysis struct {
	Class *Class

	// Category per method.
	Category []Category
	// SyncGroupOf maps a method to its synchronization group index, or
	// NoGroup for conflict-free methods.
	SyncGroupOf []int
	// SyncGroups lists the members of each synchronization group (the
	// connected components of the conflict graph).
	SyncGroups [][]MethodID
	// SumGroupOf maps a method to its summarization group index, or
	// NoGroup if unsummarizable.
	SumGroupOf []int
	// DependsOn is Dep(u) per method (nil for dependence-free methods).
	DependsOn [][]MethodID
	// DepIndex maps, for each method u and each u' in DependsOn[u], the
	// method ID u' to its position in u's dependency record; used to build
	// and check the variable-sized dependency arrays of §4.
	DepIndex []map[MethodID]int
}

// Analyze derives the coordination analysis from a class's declared
// method-level relations. It validates structural well-formedness: conflict
// edges and dependency targets must reference update methods, and
// summarization groups must consist of conflict-free, update methods.
func Analyze(cls *Class) (*Analysis, error) {
	n := len(cls.Methods)
	a := &Analysis{
		Class:       cls,
		Category:    make([]Category, n),
		SyncGroupOf: make([]int, n),
		SumGroupOf:  make([]int, n),
		DependsOn:   make([][]MethodID, n),
		DepIndex:    make([]map[MethodID]int, n),
	}
	for i := range a.SyncGroupOf {
		a.SyncGroupOf[i] = NoGroup
		a.SumGroupOf[i] = NoGroup
	}

	isUpdate := func(u MethodID) bool {
		return int(u) >= 0 && int(u) < n && cls.Methods[u].Kind == Update
	}

	// Build the undirected conflict graph.
	adj := make(map[MethodID]map[MethodID]bool)
	addEdge := func(u, v MethodID) {
		if adj[u] == nil {
			adj[u] = make(map[MethodID]bool)
		}
		adj[u][v] = true
	}
	for u, vs := range cls.ConflictsWith {
		if !isUpdate(u) {
			return nil, fmt.Errorf("spec: %s: conflict on non-update method %d", cls.Name, u)
		}
		for _, v := range vs {
			if !isUpdate(v) {
				return nil, fmt.Errorf("spec: %s: method %s conflicts with non-update method %d",
					cls.Name, cls.Methods[u].Name, v)
			}
			addEdge(u, v)
			addEdge(v, u)
		}
	}

	// Synchronization groups: connected components of the conflict graph
	// over methods with at least one conflict edge.
	for u := MethodID(0); int(u) < n; u++ {
		if len(adj[u]) == 0 || a.SyncGroupOf[u] != NoGroup {
			continue
		}
		g := len(a.SyncGroups)
		var comp []MethodID
		stack := []MethodID{u}
		a.SyncGroupOf[u] = g
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for v := range adj[x] {
				if a.SyncGroupOf[v] == NoGroup {
					a.SyncGroupOf[v] = g
					stack = append(stack, v)
				}
			}
		}
		sortMethods(comp)
		a.SyncGroups = append(a.SyncGroups, comp)
	}

	// Dependencies.
	for u, deps := range cls.DependsOn {
		if !isUpdate(u) {
			return nil, fmt.Errorf("spec: %s: dependency on non-update method %d", cls.Name, u)
		}
		for _, v := range deps {
			if !isUpdate(v) {
				return nil, fmt.Errorf("spec: %s: method %s depends on non-update method %d",
					cls.Name, cls.Methods[u].Name, v)
			}
		}
		ds := append([]MethodID(nil), deps...)
		sortMethods(ds)
		a.DependsOn[u] = ds
		idx := make(map[MethodID]int, len(ds))
		for i, d := range ds {
			idx[d] = i
		}
		a.DepIndex[u] = idx
	}

	// Summarization groups.
	for gi, g := range cls.SumGroups {
		if g.Summarize == nil || g.Identity == nil {
			return nil, fmt.Errorf("spec: %s: summarization group %q lacks Summarize/Identity",
				cls.Name, g.Name)
		}
		for _, u := range g.Methods {
			if !isUpdate(u) {
				return nil, fmt.Errorf("spec: %s: sum group %q contains non-update method %d",
					cls.Name, g.Name, u)
			}
			if a.SumGroupOf[u] != NoGroup {
				return nil, fmt.Errorf("spec: %s: method %s in two summarization groups",
					cls.Name, cls.Methods[u].Name)
			}
			a.SumGroupOf[u] = gi
		}
	}

	// Categories.
	for u := 0; u < n; u++ {
		switch {
		case cls.Methods[u].Kind == Query:
			a.Category[u] = CatQuery
		case a.SyncGroupOf[u] != NoGroup:
			a.Category[u] = CatConflicting
		case len(a.DependsOn[u]) == 0 && a.SumGroupOf[u] != NoGroup:
			a.Category[u] = CatReducible
		default:
			a.Category[u] = CatIrreducibleFree
		}
	}

	// A reducible method must not sit in a summarization group together
	// with a conflicting method: summaries bypass the ordering a
	// conflicting method needs.
	for u := 0; u < n; u++ {
		if a.Category[u] != CatReducible {
			continue
		}
		for _, v := range cls.SumGroups[a.SumGroupOf[u]].Methods {
			if a.Category[v] == CatConflicting {
				return nil, fmt.Errorf("spec: %s: reducible method %s shares sum group with conflicting %s",
					cls.Name, cls.Methods[u].Name, cls.Methods[v].Name)
			}
		}
	}
	return a, nil
}

// MustAnalyze is Analyze panicking on error; for statically-known classes.
func MustAnalyze(cls *Class) *Analysis {
	a, err := Analyze(cls)
	if err != nil {
		panic(err)
	}
	return a
}

// Conflicting reports whether method u needs synchronization.
func (a *Analysis) Conflicting(u MethodID) bool { return a.Category[u] == CatConflicting }

// Reducible reports whether method u is reducible.
func (a *Analysis) Reducible(u MethodID) bool { return a.Category[u] == CatReducible }

// NumMethods returns the number of methods in the class.
func (a *Analysis) NumMethods() int { return len(a.Category) }

// Summary returns a human-readable description of the analysis.
func (a *Analysis) Summary() string {
	s := fmt.Sprintf("class %s:\n", a.Class.Name)
	for u, m := range a.Class.Methods {
		s += fmt.Sprintf("  %-16s %s", m.Name, a.Category[u])
		if g := a.SyncGroupOf[u]; g != NoGroup {
			s += fmt.Sprintf(" sync-group=%d", g)
		}
		if g := a.SumGroupOf[u]; g != NoGroup {
			s += fmt.Sprintf(" sum-group=%q", a.Class.SumGroups[g].Name)
		}
		if deps := a.DependsOn[u]; len(deps) > 0 {
			s += " deps="
			for i, d := range deps {
				if i > 0 {
					s += ","
				}
				s += a.Class.Methods[d].Name
			}
		}
		s += "\n"
	}
	return s
}

func sortMethods(ms []MethodID) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j] < ms[j-1]; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
