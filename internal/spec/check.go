package spec

import "fmt"

// CheckRelations validates a class's declared coordination relations
// against their semantic definitions (§3.2) by randomized testing. It is
// this repository's substitute for the paper's solver-aided Hamsaz
// analysis: each declaration is a universally quantified claim over states,
// and the checker samples states and calls looking for counterexamples.
//
// Checked claims, for random invariant-satisfying states σ and random calls:
//
//   - declared S-commute(c1,c2) ⇒ c2(c1(σ)) = c1(c2(σ))
//   - declared invariant-sufficient(c) ⇒ P(σ, c)
//   - declared c1 ▷_P c2 ⇒ (P(σ,c1) ⇒ P(c2(σ),c1))
//   - declared c2 ◁_P c1 ⇒ (P(c1(σ),c2) ⇒ P(σ,c2))
//   - call-level conflict ⇒ a method-level conflict edge exists
//   - call-level dependency ⇒ a method-level dependency edge exists
//   - Summarize(c1,c2)(σ) = c2(c1(σ)) and Identity is a no-op
//   - generated states and the initial state satisfy the invariant
//
// It returns the first counterexample found, or nil.
func CheckRelations(cls *Class, r Rand, iters int) error {
	a, err := Analyze(cls)
	if err != nil {
		return err
	}
	updates := cls.UpdateMethods()
	if len(updates) == 0 {
		return fmt.Errorf("spec: %s declares no update methods", cls.Name)
	}
	if !cls.Invariant(cls.NewState()) {
		return fmt.Errorf("spec: %s: initial state violates invariant", cls.Name)
	}

	hasConflictEdge := func(u, v MethodID) bool {
		for _, w := range cls.ConflictsWith[u] {
			if w == v {
				return true
			}
		}
		for _, w := range cls.ConflictsWith[v] {
			if w == u {
				return true
			}
		}
		return false
	}
	hasDepEdge := func(u, v MethodID) bool {
		for _, w := range a.DependsOn[u] {
			if w == v {
				return true
			}
		}
		return false
	}

	for it := 0; it < iters; it++ {
		sigma := cls.Gen.State(r)
		if !cls.Invariant(sigma) {
			return fmt.Errorf("%s: generated state violates invariant (iter %d)", cls.Name, it)
		}
		u1 := updates[r.Intn(len(updates))]
		u2 := updates[r.Intn(len(updates))]
		c1 := cls.Gen.Call(r, u1)
		c2 := cls.Gen.Call(r, u2)

		// S-commutativity.
		s12 := sigma.Clone()
		cls.ApplyCall(s12, c1)
		cls.ApplyCall(s12, c2)
		s21 := sigma.Clone()
		cls.ApplyCall(s21, c2)
		cls.ApplyCall(s21, c1)
		commutes := s12.Equal(s21)
		if cls.Rel.SCommute(c1, c2) && !commutes {
			return fmt.Errorf("%s: declared S-commute fails: %s vs %s on state (iter %d)",
				cls.Name, c1.Format(cls), c2.Format(cls), it)
		}

		// Invariant sufficiency.
		for _, c := range []Call{c1, c2} {
			if cls.Rel.InvariantSufficient(c) && !cls.Permissible(sigma, c) {
				return fmt.Errorf("%s: declared invariant-sufficient %s impermissible in I-state (iter %d)",
					cls.Name, c.Format(cls), it)
			}
		}

		// P-R-commutativity: P(σ,c1) ⇒ P(c2(σ),c1). The interposed call
		// c2 must itself be permissible in σ — executions only ever apply
		// permissible calls, and the relation is used to reason about them.
		if cls.Rel.PRCommute(c1, c2) && cls.Permissible(sigma, c1) && cls.Permissible(sigma, c2) {
			post2 := sigma.Clone()
			cls.ApplyCall(post2, c2)
			if !cls.Permissible(post2, c1) {
				return fmt.Errorf("%s: declared ▷_P fails: %s after %s (iter %d)",
					cls.Name, c1.Format(cls), c2.Format(cls), it)
			}
		}

		// P-L-commutativity: P(c1(σ),c2) ⇒ P(σ,c2), for permissible c1.
		if cls.Rel.PLCommute(c2, c1) && cls.Permissible(sigma, c1) {
			post1 := sigma.Clone()
			cls.ApplyCall(post1, c1)
			if cls.Permissible(post1, c2) && !cls.Permissible(sigma, c2) {
				return fmt.Errorf("%s: declared ◁_P fails: %s w.r.t. %s (iter %d)",
					cls.Name, c2.Format(cls), c1.Format(cls), it)
			}
		}

		// Call-level relations must be covered by method-level edges.
		if cls.Rel.Conflict(c1, c2) && !hasConflictEdge(u1, u2) {
			return fmt.Errorf("%s: calls %s, %s conflict but methods lack a conflict edge (iter %d)",
				cls.Name, c1.Format(cls), c2.Format(cls), it)
		}
		if cls.Rel.Dependent(c2, c1) && !hasDepEdge(u2, u1) {
			return fmt.Errorf("%s: %s depends on %s but Dep(%s) misses %s (iter %d)",
				cls.Name, c2.Format(cls), c1.Format(cls),
				cls.Methods[u2].Name, cls.Methods[u1].Name, it)
		}

		// Summarization: within each group, Summarize(ca, cb) ≡ cb ∘ ca,
		// and Identity is neutral.
		for _, g := range cls.SumGroups {
			ca := cls.Gen.Call(r, g.Methods[r.Intn(len(g.Methods))])
			cb := cls.Gen.Call(r, g.Methods[r.Intn(len(g.Methods))])
			sum := g.Summarize(ca, cb)
			if !inGroup(g, sum.Method) {
				return fmt.Errorf("%s: group %q not closed: Summarize yields method %d (iter %d)",
					cls.Name, g.Name, sum.Method, it)
			}
			direct := sigma.Clone()
			cls.ApplyCall(direct, ca)
			cls.ApplyCall(direct, cb)
			viaSum := sigma.Clone()
			cls.ApplyCall(viaSum, sum)
			if !direct.Equal(viaSum) {
				return fmt.Errorf("%s: Summarize(%s, %s) = %s is not their composition (iter %d)",
					cls.Name, ca.Format(cls), cb.Format(cls), sum.Format(cls), it)
			}
			idState := sigma.Clone()
			cls.ApplyCall(idState, g.Identity())
			if !idState.Equal(sigma) {
				return fmt.Errorf("%s: group %q Identity is not a no-op (iter %d)", cls.Name, g.Name, it)
			}
		}
	}
	return nil
}

func inGroup(g SumGroup, u MethodID) bool {
	for _, m := range g.Methods {
		if m == u {
			return true
		}
	}
	return false
}
