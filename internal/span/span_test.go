package span

import (
	"bytes"
	"strings"
	"testing"

	"hamband/internal/sim"
	"hamband/internal/trace"
)

func ev(at sim.Time, node int, kind trace.Kind, call string, data any) trace.Event {
	return trace.Event{At: at, Node: node, Kind: kind, Call: call, Data: data}
}

func TestBuildConflictFreeSpan(t *testing.T) {
	events := []trace.Event{
		ev(100, 0, trace.Issue, "p0#1", trace.CallRecord{SubmitAt: 40}),
		ev(150, 0, trace.FreeSend, "p0#1", nil),
		ev(160, 0, trace.Complete, "p0#1", trace.AckRecord{OK: true}),
		ev(400, 0, trace.Post, "p0#1", trace.VerbRecord{Verb: "chain"}),
		ev(1600, 1, trace.Wire, "p0#1", trace.VerbRecord{Verb: "chain"}),
		ev(1700, 2, trace.Wire, "p0#1", trace.VerbRecord{Verb: "chain"}),
		ev(2600, 0, trace.CQE, "p0#1", trace.VerbRecord{Verb: "chain"}),
		ev(2800, 1, trace.Apply, "p0#1", nil),
		ev(2900, 2, trace.Apply, "p0#1", nil),
	}
	spans := Build(events)
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Category != CatConflictFree {
		t.Fatalf("category = %q", s.Category)
	}
	if s.Start != 40 || s.Done != 160 || s.End != 2900 {
		t.Fatalf("start/done/end = %d/%d/%d", s.Start, s.Done, s.End)
	}
	if s.Total() != 120 {
		t.Fatalf("total = %v, want 120 (client-observed)", s.Total())
	}
	wantStages := []string{"queue", "local-apply", "complete", "doorbell", "wire", "ack", "remote-apply"}
	if len(s.Stages) != len(wantStages) {
		t.Fatalf("stages = %+v", s.Stages)
	}
	for i, name := range wantStages {
		if s.Stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, s.Stages[i].Name, name)
		}
	}
	// Stages tile the span: consecutive, gap-free.
	if s.Stages[0].From != 40 || s.Stages[len(s.Stages)-1].To != 2900 {
		t.Fatalf("stages do not cover the span: %+v", s.Stages)
	}
	for i := 1; i < len(s.Stages); i++ {
		if s.Stages[i].From != s.Stages[i-1].To {
			t.Fatalf("gap between stages %d and %d", i-1, i)
		}
	}
	// Critical path = the client-latency chain, ending at completion.
	cp := s.CriticalPath()
	if len(cp) != 3 || cp[len(cp)-1].Name != "complete" {
		t.Fatalf("critical path = %+v", cp)
	}
}

func TestBuildConflictingSpan(t *testing.T) {
	events := []trace.Event{
		ev(100, 2, trace.Issue, "p2#1", trace.CallRecord{SubmitAt: 90}),
		ev(2000, 0, trace.Order, "p2#1", nil),
		ev(6000, 0, trace.Commit, "p2#1", nil),
		ev(8000, 2, trace.Complete, "p2#1", trace.AckRecord{OK: true}),
		ev(8500, 1, trace.Apply, "p2#1", nil),
	}
	s := Build(events)[0]
	if s.Category != CatConflicting {
		t.Fatalf("category = %q", s.Category)
	}
	want := []string{"queue", "order", "commit", "deliver", "remote-apply"}
	for i, name := range want {
		if s.Stages[i].Name != name {
			t.Fatalf("stage %d = %q, want %q", i, s.Stages[i].Name, name)
		}
	}
	if d := s.Stages[2].Duration(); d != 4000 {
		t.Fatalf("commit stage = %v, want 4µs", d)
	}
}

func TestBuildReducibleAndBatchedLabels(t *testing.T) {
	// Two reducible calls share a batched verb chain: the transport events
	// carry a comma-joined label and must be credited to both spans.
	events := []trace.Event{
		ev(100, 0, trace.Issue, "p0#1", trace.CallRecord{SubmitAt: 50}),
		ev(140, 0, trace.Reduce, "p0#1", nil),
		ev(150, 0, trace.Complete, "p0#1", nil),
		ev(200, 0, trace.Issue, "p0#2", trace.CallRecord{SubmitAt: 180}),
		ev(240, 0, trace.Reduce, "p0#2", nil),
		ev(250, 0, trace.Complete, "p0#2", nil),
		ev(400, 0, trace.Post, "p0#1,p0#2", trace.VerbRecord{Verb: "chain"}),
		ev(1600, 1, trace.Wire, "p0#1,p0#2", trace.VerbRecord{Verb: "chain"}),
	}
	spans := Build(events)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Category != CatReducible {
			t.Fatalf("%s: category = %q", s.Call, s.Category)
		}
		var names []string
		for _, st := range s.Stages {
			names = append(names, st.Name)
		}
		joined := strings.Join(names, " ")
		if !strings.Contains(joined, "doorbell") || !strings.Contains(joined, "wire") {
			t.Fatalf("%s: stages missing transport legs: %v", s.Call, names)
		}
	}
}

func TestRejectedSpanExcludedFromReport(t *testing.T) {
	events := []trace.Event{
		ev(100, 0, trace.Issue, "p0#1", trace.CallRecord{SubmitAt: 90}),
		ev(110, 0, trace.Reject, "p0#1", nil),
		ev(200, 0, trace.Issue, "p0#2", trace.CallRecord{SubmitAt: 190}),
		ev(240, 0, trace.Reduce, "p0#2", nil),
		ev(250, 0, trace.Complete, "p0#2", nil),
	}
	spans := Build(events)
	rep := Analyze(spans, nil)
	if len(rep.Categories) != 1 || rep.Categories[0].Count != 1 {
		t.Fatalf("report = %+v, want only the accepted reducible call", rep.Categories)
	}
}

func TestAnalyzeTailAttribution(t *testing.T) {
	// 20 conflict-free calls: 19 fast (total 1000), one slow (total 10000)
	// dominated by its wire stage. The p95 cohort must contain the slow
	// call and attribute the bulk of its latency to "wire".
	var events []trace.Event
	base := sim.Time(0)
	for i := 0; i < 20; i++ {
		call := "p0#" + string(rune('A'+i))
		wire := sim.Time(300)
		if i == 19 {
			wire = 9300
		}
		events = append(events,
			ev(base+100, 0, trace.Issue, call, trace.CallRecord{SubmitAt: base}),
			ev(base+200, 0, trace.FreeSend, call, nil),
			ev(base+400, 0, trace.Post, call, nil),
			ev(base+400+wire, 1, trace.Wire, call, nil),
			ev(base+600+wire, 0, trace.Complete, call, nil),
		)
		base += 20000
	}
	// Completion after the wire leg makes wire part of the critical path.
	spans := Build(events)
	rep := Analyze(spans, nil)
	if len(rep.Categories) != 1 {
		t.Fatalf("categories = %+v", rep.Categories)
	}
	cr := rep.Categories[0]
	if cr.Count != 20 || cr.Completed != 20 {
		t.Fatalf("count/completed = %d/%d", cr.Count, cr.Completed)
	}
	if len(cr.Tails) != 2 {
		t.Fatalf("tails = %+v", cr.Tails)
	}
	p95 := cr.Tails[0]
	if p95.Quantile != 0.95 || p95.Count != 1 {
		t.Fatalf("p95 cohort = %+v, want the single slow call", p95)
	}
	var wireShare float64
	for _, ss := range p95.Stages {
		if ss.Name == "wire" {
			wireShare = ss.Share
		}
	}
	if wireShare < 0.8 {
		t.Fatalf("wire share of the slow call = %.2f, want > 0.8", wireShare)
	}

	var buf bytes.Buffer
	rep.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"conflict-free", "tail p95 cohort", "wire", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report table missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	events := []trace.Event{
		ev(100, 0, trace.Issue, "p0#1", trace.CallRecord{SubmitAt: 40}),
		ev(150, 0, trace.FreeSend, "p0#1", nil),
		ev(160, 0, trace.Complete, "p0#1", nil),
		ev(300, 1, trace.Issue, "p1#1", trace.CallRecord{SubmitAt: 290}),
		ev(500, 0, trace.Order, "p1#1", nil),
		ev(900, 0, trace.Commit, "p1#1", nil),
		ev(1200, 1, trace.Complete, "p1#1", nil),
	}
	var a, b bytes.Buffer
	Analyze(Build(events), nil).WriteTable(&a)
	Analyze(Build(events), nil).WriteTable(&b)
	if a.String() != b.String() {
		t.Fatal("report is not deterministic for identical input")
	}
}
