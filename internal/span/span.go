// Package span reconstructs causal span trees from trace events: one span
// per client call, subdivided into protocol stages (CPU queueing, local
// summarization or apply, verb posting, wire transfer, consensus commit,
// remote apply). On top of spans it derives critical paths, per-stage
// latency histograms and tail-attribution reports — which stage the slow
// calls actually spend their time in.
//
// The input is any event slice recorded by trace.Tracer with core tracing
// enabled (core.Options.Tracer); the transport events (post/wire/cqe) and
// the consensus commit events appear automatically because core labels the
// underlying work requests with call identities.
package span

import (
	"sort"
	"strings"

	"hamband/internal/sim"
	"hamband/internal/trace"
)

// Call categories, matching the Hamband operation-type analysis.
const (
	CatReducible    = "reducible"
	CatConflictFree = "conflict-free"
	CatConflicting  = "conflicting"
	CatUnknown      = "unknown"
)

// Categories lists the span categories in canonical report order.
var Categories = []string{CatReducible, CatConflictFree, CatConflicting, CatUnknown}

// Stage is one leg of a span: the protocol was between two recorded
// boundary events from From to To.
type Stage struct {
	Name     string
	From, To sim.Time
}

// Duration returns the stage's length.
func (st Stage) Duration() sim.Duration { return sim.Duration(st.To - st.From) }

// Span is the reconstructed lifetime of one client call.
type Span struct {
	Call     string
	Category string
	Start    sim.Time // client submit time (Invoke entry) when known, else first event
	End      sim.Time // last recorded event (replication tail included)
	Done     sim.Time // response-resolved time; 0 when the call never completed
	Rejected bool
	Stages   []Stage // consecutive legs, in time order
	Events   []trace.Event
}

// Completed reports whether the call's response resolved.
func (s *Span) Completed() bool { return s.Done != 0 || (len(s.Events) > 0 && hasKind(s.Events, trace.Complete)) }

// Total returns the client-observed latency (submit → response) for
// completed spans and the full recorded extent otherwise.
func (s *Span) Total() sim.Duration {
	if s.Completed() {
		return sim.Duration(s.Done - s.Start)
	}
	return sim.Duration(s.End - s.Start)
}

// CriticalPath returns the chain of stages the client-observed latency is
// made of: every leg up to and including the one ending at the completion
// event. Replication-tail stages (wire transfer and remote applies that
// resolve after the response) are excluded.
func (s *Span) CriticalPath() []Stage {
	if !s.Completed() {
		return s.Stages
	}
	for i, st := range s.Stages {
		if st.To >= s.Done {
			return s.Stages[:i+1]
		}
	}
	return s.Stages
}

func hasKind(evs []trace.Event, k trace.Kind) bool {
	for _, e := range evs {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// Build groups events by call identity and reconstructs one span per call.
// Transport events whose label covers several batched calls (identities
// joined with commas) are credited to each of them. Spans come back in
// first-seen call order; events within a span are sorted by time.
func Build(events []trace.Event) []*Span {
	byCall := make(map[string][]trace.Event)
	var order []string
	add := func(call string, e trace.Event) {
		if _, ok := byCall[call]; !ok {
			order = append(order, call)
		}
		byCall[call] = append(byCall[call], e)
	}
	for _, e := range events {
		if e.Call == "" {
			continue
		}
		if strings.Contains(e.Call, ",") {
			for _, call := range strings.Split(e.Call, ",") {
				if call != "" {
					add(call, e)
				}
			}
			continue
		}
		add(e.Call, e)
	}
	spans := make([]*Span, 0, len(order))
	for _, call := range order {
		evs := byCall[call]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		spans = append(spans, build(call, evs))
	}
	return spans
}

// boundary is one candidate stage endpoint of a span.
type boundary struct {
	name string
	at   sim.Time
	ok   bool
}

func build(call string, evs []trace.Event) *Span {
	s := &Span{Call: call, Events: evs, Category: CatUnknown}
	s.Start = evs[0].At
	s.End = evs[len(evs)-1].At

	var issue, reduce, freeSend, order, commit, complete boundary
	var firstPost, lastWire, lastCQE, lastApply, lastAdopt boundary
	first := func(b *boundary, name string, at sim.Time) {
		if !b.ok {
			*b = boundary{name: name, at: at, ok: true}
		}
	}
	last := func(b *boundary, name string, at sim.Time) {
		*b = boundary{name: name, at: at, ok: true}
	}
	for _, e := range evs {
		switch e.Kind {
		case trace.Issue:
			first(&issue, "queue", e.At)
			if cr, ok := e.Data.(trace.CallRecord); ok && cr.SubmitAt != 0 && cr.SubmitAt <= e.At {
				s.Start = cr.SubmitAt
			}
		case trace.Reject:
			s.Rejected = true
		case trace.Reduce:
			first(&reduce, "summarize", e.At)
		case trace.FreeSend:
			first(&freeSend, "local-apply", e.At)
		case trace.Order:
			first(&order, "order", e.At)
		case trace.Commit:
			first(&commit, "commit", e.At)
		case trace.Complete:
			first(&complete, "complete", e.At)
			if !s.Rejected {
				s.Done = e.At
			}
		case trace.Post:
			first(&firstPost, "doorbell", e.At)
		case trace.Wire:
			last(&lastWire, "wire", e.At)
		case trace.CQE:
			last(&lastCQE, "ack", e.At)
		case trace.Apply:
			last(&lastApply, "remote-apply", e.At)
		case trace.Adopt:
			last(&lastAdopt, "adopt", e.At)
		}
	}

	// Classify by which lifecycle events the runtime emitted.
	var seq []boundary
	switch {
	case reduce.ok:
		s.Category = CatReducible
		seq = []boundary{issue, reduce, complete, firstPost, lastWire, lastAdopt}
	case freeSend.ok:
		s.Category = CatConflictFree
		seq = []boundary{issue, freeSend, complete, firstPost, lastWire, lastCQE, lastApply}
	case order.ok || commit.ok:
		s.Category = CatConflicting
		seq = []boundary{issue, order, commit, {name: "deliver", at: complete.at, ok: complete.ok}, lastApply}
	default:
		seq = []boundary{issue, complete}
	}

	// Order the present boundaries by when they actually happened (protocol
	// order breaks ties, keeping reports deterministic) and walk them with a
	// cursor: each boundary closes the stage reaching back to the previous
	// one, so the stages tile the span gap-free.
	present := seq[:0]
	for _, b := range seq {
		if b.ok {
			present = append(present, b)
		}
	}
	sort.SliceStable(present, func(i, j int) bool { return present[i].at < present[j].at })
	cursor := s.Start
	for _, b := range present {
		if b.at < cursor {
			continue
		}
		s.Stages = append(s.Stages, Stage{Name: b.name, From: cursor, To: b.at})
		cursor = b.at
	}
	return s
}
