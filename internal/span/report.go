package span

import (
	"fmt"
	"io"
	"math"
	"sort"

	"hamband/internal/metrics"
	"hamband/internal/sim"
)

// StageStats summarizes one stage's latency distribution across all spans
// of a category, extracted from its metrics histogram.
type StageStats struct {
	Name  string
	Count uint64
	Mean  sim.Duration
	P50   sim.Duration
	P95   sim.Duration
	P99   sim.Duration
}

// StageShare is one stage's contribution to a tail cohort: its mean
// duration within the cohort and that mean's share of the cohort's mean
// total latency.
type StageShare struct {
	Name  string
	Mean  sim.Duration
	Share float64
}

// TailCohort decomposes the slowest calls of a category: the spans whose
// total latency is at or above the given quantile, attributed stage by
// stage.
type TailCohort struct {
	Quantile  float64
	Count     int
	MeanTotal sim.Duration
	Stages    []StageShare
}

// CategoryReport is the per-category latency attribution.
type CategoryReport struct {
	Category  string
	Count     int
	Completed int
	Stages    []StageStats
	TotalP50  sim.Duration
	TotalP95  sim.Duration
	TotalP99  sim.Duration
	Tails     []TailCohort
}

// Report is the full latency-attribution report across categories.
type Report struct {
	Categories []*CategoryReport
}

// stageOrder fixes the report's stage ordering per category (superset of
// the stages build can emit, in protocol order).
var stageOrder = map[string][]string{
	CatReducible:    {"queue", "summarize", "complete", "doorbell", "wire", "adopt"},
	CatConflictFree: {"queue", "local-apply", "complete", "doorbell", "wire", "ack", "remote-apply"},
	CatConflicting:  {"queue", "order", "commit", "deliver", "remote-apply"},
	CatUnknown:      {"queue", "complete"},
}

// Analyze builds the latency-attribution report: per-stage histograms (fed
// through reg, so they also appear in the registry's own exports) with
// p50/p95/p99 extraction, plus tail cohorts decomposing the p95 and p99
// slowest calls of each category by stage. reg may be nil; histograms are
// then anonymous but the report is identical.
func Analyze(spans []*Span, reg *metrics.Registry) *Report {
	byCat := make(map[string][]*Span)
	for _, s := range spans {
		if s.Rejected {
			continue // rejected calls never ran the pipeline
		}
		byCat[s.Category] = append(byCat[s.Category], s)
	}
	rep := &Report{}
	for _, cat := range Categories {
		ss := byCat[cat]
		if len(ss) == 0 {
			continue
		}
		rep.Categories = append(rep.Categories, analyzeCategory(cat, ss, reg))
	}
	return rep
}

func analyzeCategory(cat string, spans []*Span, reg *metrics.Registry) *CategoryReport {
	cr := &CategoryReport{Category: cat, Count: len(spans)}
	hist := func(name string) *metrics.Histogram {
		if reg.Enabled() {
			return reg.Histogram("span."+cat+"."+name, nil)
		}
		return metrics.NewHistogram(nil)
	}
	stageHs := make(map[string]*metrics.Histogram)
	for _, name := range stageOrder[cat] {
		stageHs[name] = hist(name)
	}
	totalH := hist("total")
	var completed []*Span
	for _, s := range spans {
		for _, st := range s.Stages {
			if h, ok := stageHs[st.Name]; ok {
				h.Observe(st.Duration())
			}
		}
		if s.Completed() {
			completed = append(completed, s)
			totalH.Observe(s.Total())
		}
	}
	cr.Completed = len(completed)
	for _, name := range stageOrder[cat] {
		h := stageHs[name]
		if h.Count() == 0 {
			continue
		}
		cr.Stages = append(cr.Stages, StageStats{
			Name:  name,
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		})
	}
	cr.TotalP50 = totalH.Quantile(0.50)
	cr.TotalP95 = totalH.Quantile(0.95)
	cr.TotalP99 = totalH.Quantile(0.99)

	// Tail attribution works on the exact retained spans, not the bucketed
	// histograms: sort by total latency and decompose the slowest cohorts.
	sort.SliceStable(completed, func(i, j int) bool { return completed[i].Total() < completed[j].Total() })
	for _, q := range []float64{0.95, 0.99} {
		if tc := tailCohort(cat, completed, q); tc != nil {
			cr.Tails = append(cr.Tails, *tc)
		}
	}
	return cr
}

// tailCohort decomposes the spans at or above the q-quantile of total
// latency (spans must be sorted ascending by Total). Only critical-path
// stages count: the cohort is selected by client-observed latency, so the
// decomposition covers exactly that latency and the shares sum to one;
// post-completion replication tails are excluded.
func tailCohort(cat string, spans []*Span, q float64) *TailCohort {
	if len(spans) == 0 {
		return nil
	}
	n := int(math.Round(q * float64(len(spans))))
	if n < 0 {
		n = 0
	}
	if n >= len(spans) {
		n = len(spans) - 1
	}
	cohort := spans[n:]
	tc := &TailCohort{Quantile: q, Count: len(cohort)}
	var total sim.Duration
	stageSum := make(map[string]sim.Duration)
	for _, s := range cohort {
		total += s.Total()
		for _, st := range s.CriticalPath() {
			stageSum[st.Name] += st.Duration()
		}
	}
	tc.MeanTotal = total / sim.Duration(len(cohort))
	for _, name := range stageOrder[cat] {
		sum, ok := stageSum[name]
		if !ok {
			continue
		}
		mean := sum / sim.Duration(len(cohort))
		share := 0.0
		if tc.MeanTotal > 0 {
			share = float64(mean) / float64(tc.MeanTotal)
		}
		tc.Stages = append(tc.Stages, StageShare{Name: name, Mean: mean, Share: share})
	}
	return tc
}

// WriteTable prints the report: a per-stage percentile table per category
// followed by the tail-attribution breakdowns.
func (rep *Report) WriteTable(w io.Writer) {
	if len(rep.Categories) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	for _, cr := range rep.Categories {
		fmt.Fprintf(w, "== %s (%d calls, %d completed) ==\n", cr.Category, cr.Count, cr.Completed)
		fmt.Fprintf(w, "%-14s %9s %10s %10s %10s %10s\n", "stage", "count", "mean", "p50", "p95", "p99")
		for _, st := range cr.Stages {
			fmt.Fprintf(w, "%-14s %9d %10v %10v %10v %10v\n",
				st.Name, st.Count, st.Mean, st.P50, st.P95, st.P99)
		}
		fmt.Fprintf(w, "%-14s %9s %10s %10v %10v %10v\n",
			"total", "", "", cr.TotalP50, cr.TotalP95, cr.TotalP99)
		for _, tc := range cr.Tails {
			fmt.Fprintf(w, "tail p%.0f cohort: %d calls, mean total %v\n",
				tc.Quantile*100, tc.Count, tc.MeanTotal)
			for _, ss := range tc.Stages {
				fmt.Fprintf(w, "  %-14s %10v  %5.1f%%\n", ss.Name, ss.Mean, ss.Share*100)
			}
		}
		fmt.Fprintln(w)
	}
}
