GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test vet race bench fuzz check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full pre-merge gate: tier-1 build + tests, static analysis,
# the race detector, and a short fuzz budget over the wire-format parsers.
check: build vet test race fuzz

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/metrics ./internal/ring

# Each fuzz target gets a short fixed budget; go test only allows one
# -fuzz pattern per package invocation.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReaderPoll -fuzztime=$(FUZZTIME) ./internal/ring
	$(GO) test -run=^$$ -fuzz=FuzzDecodeEntry -fuzztime=$(FUZZTIME) ./internal/codec
	$(GO) test -run=^$$ -fuzz=FuzzDecodeSlot -fuzztime=$(FUZZTIME) ./internal/codec
	$(GO) test -run=^$$ -fuzz=FuzzDecodeRaw -fuzztime=$(FUZZTIME) ./internal/codec
