GO ?= go
FUZZTIME ?= 10s
STATICCHECK ?= staticcheck

.PHONY: all build test vet staticcheck race check-race bench bench-snapshot bench-wire bench-shard bench-reconfig benchstat fuzz chaos conform conform-sessions store health cover check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available and degrades to a notice
# otherwise (the gate must not require network access to install tools).
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./... ; \
	else \
		echo "staticcheck not installed; skipping (go vet still gates)"; \
	fi

race:
	$(GO) test -race ./...

# check-race is the standalone race-detector lane CI runs in parallel with
# the main gate: build plus the full test suite under -race, uncached so
# every run actually exercises the detector.
check-race: build
	$(GO) test -race -count=1 ./...

# chaos replays the committed fixed-seed plan corpus (including the three
# join/leave reconfiguration plans) and the randomized acceptance sweep
# through the nemesis runner, plus the membership-change acceptance tests
# (round-trip convergence, a leader kill mid-epoch-transition, pair-aware
# shrinking). Failing plans are shrunk and dumped as replayable JSON next
# to the test binary's working dir (see `hambench -exp chaos -plan-json`).
chaos:
	$(GO) test -run 'TestCorpus|TestRandomizedPlans|TestShardMixConverges|TestShardFaultIsolation|TestReconfig' -count=1 -v ./internal/chaos

# conform runs the refinement conformance gate: the fixed-seed corpus
# (fault-free and fault-plan workloads across the counter/orset/bankmap
# classes, checked deterministic) plus the harness's own mutation test (an
# injected apply-order bug must be caught and shrunk to <= 8 calls). See
# `hambench -exp conform` for the exploratory version.
conform:
	$(GO) test -run 'TestConformCorpus|TestMutated' -count=1 -v ./internal/conform

# conform-sessions runs the client-session gate: the session-guarantee
# checker's unit histories, live sessions across an epoch change (monotonic
# reads, read-your-writes, writes-follow-reads spanning replica switches),
# and the stale-read mutation control (must be caught and shrunk to <= 6
# events).
conform-sessions:
	$(GO) test -run 'TestSession|TestStaleRead' -count=1 -v ./internal/conform

# store runs the sharded multi-object store gate: exact footprint
# accounting against the per-node arena, typed budget errors, freed-memory
# reuse under concurrent open/close, cross-shard doorbell coalescing and
# shard-tagged trace decomposition.
store:
	$(GO) test -count=1 -v ./internal/store

# health runs the introspection gate: the watchdog rule unit tests and the
# zero-alloc snapshot guarantee (internal/health), the fault-plan
# cross-check over the chaos corpus (every firing predicted by an injected
# fault, fault-free runs silent, schedules unperturbed), the metrics-export
# completeness pin, and the fixed-seed `-exp health` run itself (nonzero
# exit on unexpected firings, an unobserved fault run, or a noisy control).
health:
	$(GO) test -count=1 -v ./internal/health
	$(GO) test -run 'TestWatchdog|TestKindRules' -count=1 -v ./internal/chaos
	$(GO) test -run 'TestMetricsExportCompleteness' -count=1 -v ./internal/bench
	$(GO) run ./cmd/hambench -exp health -ops 600

# cover prints per-package statement coverage so test gaps stay visible.
cover:
	$(GO) test -cover ./... | grep -v 'no test files'

# check is the full pre-merge gate: tier-1 build + tests, static analysis,
# the race detector, a short fuzz budget over the wire-format parsers, the
# chaos plan corpus and the refinement conformance corpus.
check: build vet staticcheck test race fuzz chaos conform conform-sessions store health

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/metrics ./internal/ring

# bench-snapshot regenerates the canonical benchmark snapshot committed at
# the repo root (deterministic: same ops+seed give identical bytes).
SNAPSHOT ?= BENCH_PR8.json
bench-snapshot:
	$(GO) run ./cmd/hambench -exp snapshot -snapshot-out $(SNAPSHOT)

# bench-wire runs the δ-vs-full wire-efficiency ablation: bytes on the wire
# per op, reduction, and wire-stage latency share per class.
bench-wire:
	$(GO) run ./cmd/hambench -exp wire

# bench-shard runs the sharded-store experiment: object-count and Zipfian
# skew sweeps with hot-key reporting, cross-shard chained-WR counts and the
# shared-vs-private doorbell-coalescer ablation.
SHARDS ?= 16
bench-shard:
	$(GO) run ./cmd/hambench -exp shard -shards $(SHARDS)

# bench-reconfig runs the membership-change experiment: windowed throughput
# around a leave/join round-trip with dip and recovery-time reporting.
bench-reconfig:
	$(GO) run ./cmd/hambench -exp reconfig

# benchstat compares two snapshots: make benchstat OLD=a.json NEW=b.json.
# MAXREGRESS, when nonzero, fails the target if any fig8 point's throughput
# drops by more than that percentage — the CI regression gate.
OLD ?= BENCH_PR7.json
NEW ?= BENCH_PR8.json
MAXREGRESS ?= 0
benchstat:
	$(GO) run ./cmd/hambench -exp benchstat -old $(OLD) -new $(NEW) -max-regress $(MAXREGRESS)

# Each fuzz target gets a short fixed budget; go test only allows one
# -fuzz pattern per package invocation.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReaderPoll -fuzztime=$(FUZZTIME) ./internal/ring
	$(GO) test -run=^$$ -fuzz=FuzzDecodeEntry -fuzztime=$(FUZZTIME) ./internal/codec
	$(GO) test -run=^$$ -fuzz=FuzzDecodeSlot -fuzztime=$(FUZZTIME) ./internal/codec
	$(GO) test -run=^$$ -fuzz=FuzzSlot -fuzztime=$(FUZZTIME) ./internal/codec
	$(GO) test -run=^$$ -fuzz=FuzzDecodeRaw -fuzztime=$(FUZZTIME) ./internal/codec
	$(GO) test -run=^$$ -fuzz=FuzzDeltaEntry -fuzztime=$(FUZZTIME) ./internal/codec
	$(GO) test -run=^$$ -fuzz=FuzzPlanJSON -fuzztime=$(FUZZTIME) ./internal/chaos
