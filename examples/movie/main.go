// Movie: two independent synchronization groups ordered by two independent
// leaders (the mechanism behind the paper's Figure 10 speedup), compared
// head-to-head against the single-leader SMR baseline on the same workload.
//
// The movie schema's customer and movie relations never interact, so the
// conflict graph has two connected components. Hamband gives each component
// its own Mu instance with its own leader; the SMR baseline funnels every
// update through one leader. With updates split evenly between the two
// relations, Hamband approaches 2× the SMR throughput.
//
// Run with: go run ./examples/movie
package main

import (
	"fmt"

	"hamband/internal/baseline/smr"
	"hamband/internal/core"
	"hamband/internal/rdma"
	"hamband/internal/schema"
	"hamband/internal/sim"
	"hamband/internal/spec"
)

const ops = 4000

// run executes `ops` alternating addCustomer/addMovie updates on a 4-node
// cluster with a closed loop of 8 per node, and returns the virtual-time
// makespan.
func run(name string, invoke func(p spec.ProcID, u spec.MethodID, a spec.Args, cb func(any, error)),
	eng *sim.Engine) sim.Duration {
	remaining := ops
	inflight := 0
	var finished sim.Time
	var issue func(p spec.ProcID, i int)
	issue = func(p spec.ProcID, i int) {
		if remaining == 0 {
			return
		}
		remaining--
		inflight++
		u := schema.MovieAddCustomer
		if i%2 == 1 {
			u = schema.MovieAddMovie
		}
		invoke(p, u, spec.ArgsI(int64(i%256)), func(any, error) {
			inflight--
			if remaining == 0 && inflight == 0 {
				finished = eng.Now()
				eng.Stop()
			}
			issue(p, i+2)
		})
	}
	eng.At(0, func() {
		for p := spec.ProcID(0); p < 4; p++ {
			for s := 0; s < 8; s++ {
				issue(p, int(p)*97+s)
			}
		}
	})
	eng.Run()
	d := sim.Duration(finished)
	fmt.Printf("%-22s %6d updates in %10v  ->  %.2f ops/µs\n",
		name, ops, d, float64(ops)/d.Micros())
	return d
}

func main() {
	cls := schema.NewMovie()
	an := spec.MustAnalyze(cls)
	fmt.Print(an.Summary())

	// Hamband: two groups, two leaders.
	engH := sim.NewEngine(3)
	fabH := rdma.NewFabric(engH, 4, rdma.DefaultLatency())
	ham := core.NewCluster(fabH, an, core.DefaultOptions())
	fmt.Printf("Hamband leaders: group0 -> p%d, group1 -> p%d\n\n",
		ham.Leader(0, 0), ham.Leader(0, 1))
	dh := run("Hamband (2 leaders)", func(p spec.ProcID, u spec.MethodID, a spec.Args, cb func(any, error)) {
		ham.Replica(p).Invoke(u, a, cb)
	}, engH)

	// SMR: one leader for everything.
	engS := sim.NewEngine(3)
	fabS := rdma.NewFabric(engS, 4, rdma.DefaultLatency())
	single := smr.NewCluster(fabS, an, smr.DefaultOptions())
	ds := run("Mu SMR (1 leader)", func(p spec.ProcID, u spec.MethodID, a spec.Args, cb func(any, error)) {
		single.Replica(p).Invoke(u, a, cb)
	}, engS)

	fmt.Printf("\nspeedup from separate synchronization groups: %.2f× (theoretical limit 2×)\n",
		float64(ds)/float64(dh))
}
