// Quickstart: replicate a counter over a three-node simulated RDMA cluster.
//
// The counter's add method is *reducible* — conflict-free, dependence-free
// and summarizable — so every update is carried to the other replicas by a
// single one-sided RDMA write of the issuer's summary slot; no messages, no
// consensus, no remote CPU.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"hamband/internal/core"
	"hamband/internal/crdt"
	"hamband/internal/rdma"
	"hamband/internal/sim"
	"hamband/internal/spec"
)

func main() {
	// A deterministic discrete-event engine drives the whole cluster.
	eng := sim.NewEngine(1)
	fab := rdma.NewFabric(eng, 3, rdma.DefaultLatency())

	// Analyze the data type: the analysis derives the method categories
	// the runtime dispatches on.
	cls := crdt.NewCounter()
	an := spec.MustAnalyze(cls)
	fmt.Print(an.Summary())

	cluster := core.NewCluster(fab, an, core.DefaultOptions())

	// Issue updates at different replicas.
	eng.At(0, func() {
		cluster.Replica(0).Invoke(crdt.CounterAdd, spec.ArgsI(5), nil)
		cluster.Replica(1).Invoke(crdt.CounterAdd, spec.ArgsI(7), nil)
		cluster.Replica(2).Invoke(crdt.CounterAdd, spec.ArgsI(-2), nil)
	})

	// A moment later, query each replica: summaries have landed.
	eng.At(sim.Time(100*sim.Microsecond), func() {
		for p := spec.ProcID(0); p < 3; p++ {
			p := p
			cluster.Replica(p).Invoke(crdt.CounterValue, spec.Args{}, func(v any, err error) {
				fmt.Printf("t=%v  replica p%d reads %v (err=%v)\n",
					sim.Duration(eng.Now()), p, v, err)
			})
		}
	})

	eng.RunUntil(sim.Time(sim.Millisecond))

	w := fab.Stats().Writes
	fmt.Printf("\n3 updates replicated with %d one-sided RDMA writes and zero messages\n", w)
}
