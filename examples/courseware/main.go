// Courseware: a relational schema with all three method categories and a
// leader failure (the paper's Figure 13 scenario as a demo).
//
//   - registerStudent is reducible: student registrations summarize into a
//     single set-typed call and propagate as one remote write;
//   - addCourse, deleteCourse and enroll form a synchronization group (a
//     concurrent deleteCourse and enroll on the same course must be
//     ordered); enroll additionally depends on addCourse and
//     registerStudent through the foreign-key invariant;
//   - when the group's leader fails, the failure detector suspects it, the
//     next node takes over leadership, and conflicting calls resume, while
//     conflict-free registrations never stop flowing.
//
// Run with: go run ./examples/courseware
package main

import (
	"fmt"

	"hamband/internal/core"
	"hamband/internal/rdma"
	"hamband/internal/schema"
	"hamband/internal/sim"
	"hamband/internal/spec"
)

func main() {
	eng := sim.NewEngine(11)
	fab := rdma.NewFabric(eng, 4, rdma.DefaultLatency())
	cls := schema.NewCourseware()
	an := spec.MustAnalyze(cls)
	fmt.Print(an.Summary())

	opts := core.DefaultOptions()
	opts.CheckIntegrity = true
	cluster := core.NewCluster(fab, an, opts)

	log := func(format string, args ...any) {
		fmt.Printf("t=%-10v ", sim.Duration(eng.Now()))
		fmt.Printf(format+"\n", args...)
	}
	at := func(d sim.Duration, fn func()) { eng.At(sim.Time(d), fn) }

	at(0, func() {
		log("p1 addCourse(101); p2 registerStudent({7,8})")
		cluster.Replica(1).Invoke(schema.RefAddLeft, spec.ArgsI(101), nil)
		cluster.Replica(2).Invoke(schema.RefAddRight, spec.ArgsI(7, 8), nil)
	})
	at(300*sim.Microsecond, func() {
		cluster.Replica(3).Invoke(schema.RefLink, spec.ArgsI(101, 7), func(_ any, err error) {
			log("p3 enroll(101, 7) -> err=%v", err)
		})
	})

	// Leader failure: p0 leads the synchronization group by default.
	at(800*sim.Microsecond, func() {
		log("LEADER p0 fails (heartbeat thread suspended; NIC stays up)")
		cluster.Replica(0).Beater().Suspend()
		fab.Node(0).Suspend()
	})
	// Conflict-free registrations keep flowing during fail-over.
	at(900*sim.Microsecond, func() {
		cluster.Replica(2).Invoke(schema.RefAddRight, spec.ArgsI(9), func(_ any, err error) {
			log("p2 registerStudent({9}) during fail-over -> err=%v", err)
		})
	})
	// A conflicting call during/after fail-over waits for the new leader.
	at(1*sim.Millisecond, func() {
		cluster.Replica(3).Invoke(schema.RefLink, spec.ArgsI(101, 8), func(_ any, err error) {
			log("p3 enroll(101, 8) after fail-over -> err=%v (leader is now p%d)",
				err, cluster.Leader(3, 0))
		})
	})

	eng.RunUntil(sim.Time(50 * sim.Millisecond))

	st := cluster.Replica(1).CurrentState().(*schema.RefState)
	for p := spec.ProcID(2); p < 4; p++ {
		if !cluster.Replica(p).CurrentState().Equal(st) {
			fmt.Println("ERROR: survivors diverged")
			return
		}
	}
	fmt.Printf("\nsurvivors converged: %d courses, %d students, %d enrollments; leader moved p0 -> p%d\n",
		len(st.Left), len(st.Right), len(st.Links), cluster.Leader(1, 0))
}
