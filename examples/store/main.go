// Store: several replicated objects behind one keyed directory — an
// online shop with a bank account (reducible deposits, leader-ordered
// withdrawals), a product catalog (grow-only set) and a shopping cart
// (OR-cart), each with exactly the coordination its methods need. The
// sharded store carves every object's rings, summary slots and δ-logs out
// of one registered arena per node with an explicit memory budget, runs
// one heartbeat/detector pair per node for all objects, and routes every
// object's summary writes through shared per-peer QPs so fan-out to the
// same peer rides one chained doorbell even across objects.
//
// Run with: go run ./examples/store
package main

import (
	"fmt"

	"hamband/internal/crdt"
	"hamband/internal/rdma"
	"hamband/internal/sim"
	"hamband/internal/spec"
	"hamband/internal/store"
)

func main() {
	eng := sim.NewEngine(4)
	fab := rdma.NewFabric(eng, 3, rdma.DefaultLatency())

	opts := store.DefaultOptions()
	opts.MemoryBudget = 8 << 20 // 8 MiB of registered memory per node
	opts.Core.CheckIntegrity = true
	st := store.New(fab, opts)
	defer st.Stop()

	open := func(key string, cls *spec.Class) *store.Shard {
		sh, err := st.Open(key, spec.MustAnalyze(cls), store.ShardOptions{})
		if err != nil {
			panic(err)
		}
		used, total := st.Budget(0)
		fmt.Printf("opened %-8s %7d B/node  (budget %d/%d B)\n", key, sh.Footprint(), used, total)
		return sh
	}
	bank := open("bank", crdt.NewAccount())
	catalog := open("catalog", crdt.NewGSet())
	cart := open("cart", crdt.NewCart())

	at := func(d sim.Duration, fn func()) { eng.At(sim.Time(d), fn) }
	log := func(format string, args ...any) {
		fmt.Printf("t=%-10v ", sim.Duration(eng.Now()))
		fmt.Printf(format+"\n", args...)
	}

	at(0, func() {
		log("p0 lists products {101, 102, 103} in the catalog (reducible set add)")
		catalog.Invoke(0, crdt.GSetAdd, spec.ArgsI(101, 102, 103), nil)
		log("p0 customer deposits 50 into the account (same drain: shares the doorbell)")
		bank.Invoke(0, crdt.AccountDeposit, spec.ArgsI(50), nil)
	})
	at(300*sim.Microsecond, func() {
		log("p2 customer puts product 101 (×2) in the cart")
		cart.Invoke(2, crdt.CartAdd, spec.ArgsI(101, 2, crdt.Tag(2, 1)), nil)
	})
	at(600*sim.Microsecond, func() {
		log("p2 checkout: withdraw 30 (conflicting, ordered by the bank shard's leader)")
		bank.Invoke(2, crdt.AccountWithdraw, spec.ArgsI(30), func(_ any, err error) {
			log("checkout completed, err=%v", err)
		})
	})

	eng.RunUntil(sim.Time(20 * sim.Millisecond))

	// Every replica of every object agrees.
	fmt.Println()
	for p := spec.ProcID(0); p < 3; p++ {
		p := p
		bank.Query(p, crdt.AccountBalance, spec.Args{}, false, func(bal any, _ error) {
			catalog.Query(p, crdt.GSetSize, spec.Args{}, false, func(n any, _ error) {
				cart.Query(p, crdt.CartQty, spec.ArgsI(101), false, func(q any, _ error) {
					fmt.Printf("p%d view: balance=%v, catalog=%v products, cart[101]=%v\n",
						p, bal, n, q)
				})
			})
		})
	}
	eng.RunUntil(eng.Now() + sim.Time(sim.Millisecond))

	cross := rdma.CoalesceStats{}
	for n := 0; n < 3; n++ {
		cs := st.Coalescer(n).Stats()
		cross.Chains += cs.Chains
		cross.CrossChains += cs.CrossChains
		cross.CrossWRs += cs.CrossWRs
	}
	fmt.Printf("\nthree objects, one fabric: %d one-sided writes, %d chained doorbells (%d crossing objects, %d WRs)\n",
		fab.Stats().Writes, cross.Chains, cross.CrossChains, cross.CrossWRs)
}
