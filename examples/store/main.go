// Store: several replicated objects sharing one RDMA fabric via
// namespaces — an online shop with a bank account (reducible deposits,
// leader-ordered withdrawals), a product catalog (grow-only set) and a
// shopping cart (OR-cart), each with exactly the coordination its methods
// need, all over the same three nodes and one shared failure detector.
//
// Run with: go run ./examples/store
package main

import (
	"fmt"

	"hamband/internal/core"
	"hamband/internal/crdt"
	"hamband/internal/rdma"
	"hamband/internal/sim"
	"hamband/internal/spec"
)

func main() {
	eng := sim.NewEngine(4)
	fab := rdma.NewFabric(eng, 3, rdma.DefaultLatency())

	build := func(ns string, cls *spec.Class) *core.Cluster {
		opts := core.DefaultOptions()
		opts.Namespace = ns
		opts.CheckIntegrity = true
		return core.NewCluster(fab, spec.MustAnalyze(cls), opts)
	}
	bank := build("bank/", crdt.NewAccount())
	catalog := build("catalog/", crdt.NewGSet())
	cart := build("cart/", crdt.NewCart())

	at := func(d sim.Duration, fn func()) { eng.At(sim.Time(d), fn) }
	log := func(format string, args ...any) {
		fmt.Printf("t=%-10v ", sim.Duration(eng.Now()))
		fmt.Printf(format+"\n", args...)
	}

	at(0, func() {
		log("p0 lists products {101, 102, 103} in the catalog (reducible set add)")
		catalog.Replica(0).Invoke(crdt.GSetAdd, spec.ArgsI(101, 102, 103), nil)
		log("p1 customer deposits 50 into the account")
		bank.Replica(1).Invoke(crdt.AccountDeposit, spec.ArgsI(50), nil)
	})
	at(300*sim.Microsecond, func() {
		log("p2 customer puts product 101 (×2) in the cart")
		cart.Replica(2).Invoke(crdt.CartAdd, spec.ArgsI(101, 2, crdt.Tag(2, 1)), nil)
	})
	at(600*sim.Microsecond, func() {
		log("p2 checkout: withdraw 30 (conflicting, ordered by the bank's leader)")
		bank.Replica(2).Invoke(crdt.AccountWithdraw, spec.ArgsI(30), func(_ any, err error) {
			log("checkout completed, err=%v", err)
		})
	})

	eng.RunUntil(sim.Time(20 * sim.Millisecond))

	// Every replica of every object agrees.
	fmt.Println()
	for p := spec.ProcID(0); p < 3; p++ {
		p := p
		bank.Replica(p).Invoke(crdt.AccountBalance, spec.Args{}, func(bal any, _ error) {
			catalog.Replica(p).Invoke(crdt.GSetSize, spec.Args{}, func(n any, _ error) {
				cart.Replica(p).Invoke(crdt.CartQty, spec.ArgsI(101), func(q any, _ error) {
					fmt.Printf("p%d view: balance=%v, catalog=%v products, cart[101]=%v\n",
						p, bal, n, q)
				})
			})
		})
	}
	eng.RunUntil(eng.Now() + sim.Time(sim.Millisecond))
	fmt.Printf("\nthree objects, one fabric: %d one-sided writes total, zero messages\n",
		fab.Stats().Writes)
}
