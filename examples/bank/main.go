// Bank account: the paper's running example (§2) end to end.
//
// The account's integrity invariant keeps the balance non-negative. The
// coordination analysis classifies deposit as reducible (it is
// invariant-sufficient and summarizable: two deposits merge into one) and
// withdraw as conflicting (two concurrent withdrawals can jointly
// overdraft), with withdraw depending on deposit (a withdrawal may rely on
// a preceding deposit having arrived first).
//
// The demo shows all three behaviours:
//  1. deposits race freely and summarize,
//  2. two concurrent withdrawals that together overdraft are serialized by
//     the synchronization group's leader and one is rejected,
//  3. a withdrawal issued right after a deposit waits for the deposit at
//     every replica, so no replica ever observes a negative balance.
//
// Run with: go run ./examples/bank
package main

import (
	"errors"
	"fmt"

	"hamband/internal/core"
	"hamband/internal/crdt"
	"hamband/internal/rdma"
	"hamband/internal/sim"
	"hamband/internal/spec"
)

func main() {
	eng := sim.NewEngine(7)
	fab := rdma.NewFabric(eng, 3, rdma.DefaultLatency())
	cls := crdt.NewAccount()
	an := spec.MustAnalyze(cls)
	fmt.Print(an.Summary())

	opts := core.DefaultOptions()
	opts.CheckIntegrity = true // assert the invariant on every state change
	cluster := core.NewCluster(fab, an, opts)

	at := func(d sim.Duration, fn func()) { eng.At(sim.Time(d), fn) }
	balanceAt := func(p spec.ProcID) {
		cluster.Replica(p).Invoke(crdt.AccountBalance, spec.Args{}, func(v any, err error) {
			fmt.Printf("t=%-10v p%d balance() = %v\n", sim.Duration(eng.Now()), p, v)
		})
	}

	// 1. Deposits from two replicas, each a single remote write.
	at(0, func() {
		fmt.Println("p1 deposits 60, p2 deposits 40 (reducible: summarized, remote-written)")
		cluster.Replica(1).Invoke(crdt.AccountDeposit, spec.ArgsI(60), nil)
		cluster.Replica(2).Invoke(crdt.AccountDeposit, spec.ArgsI(40), nil)
	})
	at(200*sim.Microsecond, func() { balanceAt(0) })

	// 2. Two concurrent withdrawals that together would overdraft: the
	// leader of the {withdraw} synchronization group serializes them.
	at(300*sim.Microsecond, func() {
		fmt.Println("p1 and p2 both withdraw 80 concurrently (conflicting: leader-ordered)")
		done := func(who spec.ProcID) func(any, error) {
			return func(_ any, err error) {
				switch {
				case err == nil:
					fmt.Printf("t=%-10v p%d withdraw(80) committed\n", sim.Duration(eng.Now()), who)
				case errors.Is(err, core.ErrImpermissible):
					fmt.Printf("t=%-10v p%d withdraw(80) REJECTED (would overdraft)\n", sim.Duration(eng.Now()), who)
				default:
					fmt.Printf("t=%-10v p%d withdraw error: %v\n", sim.Duration(eng.Now()), who, err)
				}
			}
		}
		cluster.Replica(1).Invoke(crdt.AccountWithdraw, spec.ArgsI(80), done(1))
		cluster.Replica(2).Invoke(crdt.AccountWithdraw, spec.ArgsI(80), done(2))
	})
	at(600*sim.Microsecond, func() { balanceAt(1) })

	// 3. Deposit-then-withdraw from the same replica: the withdraw's
	// dependency record makes every replica apply the deposit first.
	at(700*sim.Microsecond, func() {
		fmt.Println("p0 deposits 100 and immediately withdraws 100 (dependency-gated)")
		cluster.Replica(0).Invoke(crdt.AccountDeposit, spec.ArgsI(100), nil)
		cluster.Replica(0).Invoke(crdt.AccountWithdraw, spec.ArgsI(100), nil)
	})
	at(1500*sim.Microsecond, func() {
		for p := spec.ProcID(0); p < 3; p++ {
			balanceAt(p)
		}
	})

	eng.RunUntil(sim.Time(3 * sim.Millisecond))

	// Convergence check.
	s0 := cluster.Replica(0).CurrentState()
	for p := spec.ProcID(1); p < 3; p++ {
		if !s0.Equal(cluster.Replica(p).CurrentState()) {
			fmt.Println("ERROR: replicas diverged")
			return
		}
	}
	fmt.Printf("\nall replicas converged at balance %d; invariant held throughout\n",
		s0.(*crdt.AccountState).Balance)
}
