// Editor: collaborative text editing over RDMA with the RGA sequence CRDT
// (Roh et al., cited by the paper for collaborative applications).
//
// Three replicas edit one document concurrently. Every insert is an
// irreducible conflict-free call that travels through the reliable
// broadcast with a dependency record — insert depends on insert, so an
// anchored character can never arrive before the character it attaches to
// (causal delivery from the paper's dependency-preservation condition).
// Concurrent inserts at the same position order deterministically, and all
// replicas converge without any synchronization.
//
// Run with: go run ./examples/editor
package main

import (
	"fmt"

	"hamband/internal/core"
	"hamband/internal/crdt"
	"hamband/internal/rdma"
	"hamband/internal/sim"
	"hamband/internal/spec"
)

// typist simulates one author typing a word character by character, each
// character anchored on the previous one.
type typist struct {
	cluster *core.Cluster
	p       spec.ProcID
	seq     uint64
	last    int64 // anchor for the next character
}

func (ty *typist) typeWord(eng *sim.Engine, start sim.Duration, word string, gap sim.Duration) {
	for i := 0; i < len(word); i++ {
		ch := word[i]
		at := start + sim.Duration(i)*gap
		eng.At(sim.Time(at), func() {
			ty.seq++
			id := crdt.Tag(ty.p, ty.seq)
			ty.cluster.Replica(ty.p).Invoke(crdt.RGAInsert,
				spec.ArgsI(ty.last, id, int64(ch)), nil)
			ty.last = id
		})
	}
}

func main() {
	eng := sim.NewEngine(9)
	fab := rdma.NewFabric(eng, 3, rdma.DefaultLatency())
	cls := crdt.NewRGA()
	an := spec.MustAnalyze(cls)
	fmt.Print(an.Summary())

	cluster := core.NewCluster(fab, an, core.DefaultOptions())

	// Three authors type concurrently at the document head.
	authors := []struct {
		p    spec.ProcID
		word string
	}{
		{0, "hello "},
		{1, "brave "},
		{2, "world "},
	}
	for _, a := range authors {
		ty := &typist{cluster: cluster, p: a.p}
		ty.typeWord(eng, 0, a.word, 30*sim.Microsecond)
	}

	// Watch one replica's view converge over time.
	for _, at := range []sim.Duration{50 * sim.Microsecond, 200 * sim.Microsecond, 2 * sim.Millisecond} {
		at := at
		eng.At(sim.Time(at), func() {
			cluster.Replica(1).Invoke(crdt.RGARead, spec.Args{}, func(v any, _ error) {
				fmt.Printf("t=%-10v p1 sees %q\n", sim.Duration(eng.Now()), v)
			})
		})
	}

	eng.RunUntil(sim.Time(10 * sim.Millisecond))

	// All replicas converge on the same document.
	docs := make([]string, 3)
	for p := spec.ProcID(0); p < 3; p++ {
		p := p
		cluster.Replica(p).Invoke(crdt.RGARead, spec.Args{}, func(v any, _ error) {
			docs[p] = v.(string)
		})
	}
	eng.RunUntil(eng.Now() + sim.Time(sim.Millisecond))
	if docs[0] != docs[1] || docs[1] != docs[2] {
		fmt.Printf("ERROR: diverged: %q %q %q\n", docs[0], docs[1], docs[2])
		return
	}
	fmt.Printf("\nconverged document: %q\n", docs[0])
	fmt.Println("each word stayed contiguous (per-author inserts anchor on each other);")
	fmt.Println("word interleaving is the deterministic concurrent-insert order")
}
