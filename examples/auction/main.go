// Auction: a Hamsaz-style schema with S-conflicts and a recency-aware
// query (the Hampa extension).
//
//   - register is reducible: bidder registrations summarize into one
//     set-typed call and propagate as single remote writes;
//   - placeBid and close form a synchronization group: a bid racing a close
//     must be ordered (counted toward the winner, or suppressed as late);
//   - placeBid depends on register — a bid must not reach a replica before
//     its bidder's registration;
//   - InvokeFresh demonstrates the recency extension: right after a remote
//     registration, a plain query may still miss it, while a fresh query
//     reads the issuer's authoritative summary slot and sees it.
//
// Run with: go run ./examples/auction
package main

import (
	"fmt"

	"hamband/internal/core"
	"hamband/internal/rdma"
	"hamband/internal/schema"
	"hamband/internal/sim"
	"hamband/internal/spec"
)

func main() {
	eng := sim.NewEngine(5)
	fab := rdma.NewFabric(eng, 3, rdma.DefaultLatency())
	cls := schema.NewAuction()
	an := spec.MustAnalyze(cls)
	fmt.Print(an.Summary())

	opts := core.DefaultOptions()
	opts.CheckIntegrity = true
	// A slow summary scan makes the plain-vs-fresh query contrast visible.
	opts.SumScanPeriod = 200 * sim.Microsecond
	cluster := core.NewCluster(fab, an, opts)

	log := func(format string, args ...any) {
		fmt.Printf("t=%-10v ", sim.Duration(eng.Now()))
		fmt.Printf(format+"\n", args...)
	}
	at := func(d sim.Duration, fn func()) { eng.At(sim.Time(d), fn) }

	at(0, func() {
		log("p0 registers bidders {1, 2} (reducible: one remote write per peer)")
		cluster.Replica(0).Invoke(schema.AuctionRegister, spec.ArgsI(1, 2), nil)
	})

	// Recency: query p2 both ways a few µs later, before its 200 µs scan
	// notices p0's registration summary.
	at(10*sim.Microsecond, func() {
		cluster.Replica(2).Invoke(schema.AuctionBidders, spec.Args{}, func(v any, _ error) {
			log("p2 plain   bidders() = %v (summary landed but unscanned)", v)
		})
		cluster.Replica(2).InvokeFresh(schema.AuctionBidders, spec.Args{}, func(v any, _ error) {
			log("p2 fresh   bidders() = %v (read peers' authoritative slots first)", v)
		})
	})

	at(400*sim.Microsecond, func() {
		log("p1 bids 70 for bidder 1; p2 bids 90 for bidder 2 (ordered by the group leader)")
		cluster.Replica(1).Invoke(schema.AuctionBid, spec.ArgsI(1, 70), nil)
		cluster.Replica(2).Invoke(schema.AuctionBid, spec.ArgsI(2, 90), nil)
	})

	at(800*sim.Microsecond, func() {
		log("p0 closes the auction (conflicts with racing bids: serialized)")
		cluster.Replica(0).Invoke(schema.AuctionClose, spec.Args{}, nil)
	})

	// A late bid must not change the winner.
	at(1200*sim.Microsecond, func() {
		cluster.Replica(1).Invoke(schema.AuctionBid, spec.ArgsI(1, 999), func(_ any, err error) {
			log("p1 late bid 999 -> err=%v (ordered after close: suppressed)", err)
		})
	})

	at(2*sim.Millisecond, func() {
		for p := spec.ProcID(0); p < 3; p++ {
			p := p
			cluster.Replica(p).Invoke(schema.AuctionWinner, spec.Args{}, func(v any, _ error) {
				log("p%d winner() = bidder %v", p, v)
			})
		}
	})

	eng.RunUntil(sim.Time(10 * sim.Millisecond))

	s0 := cluster.Replica(0).CurrentState()
	for p := spec.ProcID(1); p < 3; p++ {
		if !s0.Equal(cluster.Replica(p).CurrentState()) {
			fmt.Println("ERROR: replicas diverged")
			return
		}
	}
	st := s0.(*schema.AuctionState)
	fmt.Printf("\nconverged: %d bidders, %d bids, winner = bidder %d at %d\n",
		len(st.Bidders), len(st.Bids), st.Winner, st.Bids[st.Winner])
}
