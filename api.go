package hamband

// This file is the library's public facade: the user-facing surface of the
// internal packages, re-exported through type aliases and constructor
// wrappers so that downstream modules can build and run Hamband clusters
// without reaching into internal paths.
//
// A minimal deployment:
//
//	eng := hamband.NewEngine(1)
//	fab := hamband.NewFabric(eng, 3, hamband.DefaultLatency())
//	cluster := hamband.NewCluster(fab, hamband.MustAnalyze(hamband.NewCounter()),
//	    hamband.DefaultOptions())
//	cluster.Replica(0).Invoke(hamband.CounterAdd, hamband.ArgsI(5), nil)
//	eng.Run()

import (
	"hamband/internal/core"
	"hamband/internal/crdt"
	"hamband/internal/rdma"
	"hamband/internal/schema"
	"hamband/internal/sim"
	"hamband/internal/spec"
	"hamband/internal/trace"
)

// --- simulation engine --------------------------------------------------

// Engine is the deterministic discrete-event engine driving a simulation.
type Engine = sim.Engine

// Time is a point in virtual time (nanoseconds).
type Time = sim.Time

// Duration is a span of virtual time (nanoseconds).
type Duration = sim.Duration

// Virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a seeded deterministic engine.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// --- RDMA fabric ----------------------------------------------------------

// Fabric is the simulated RDMA network.
type Fabric = rdma.Fabric

// LatencyModel is the fabric's cost model.
type LatencyModel = rdma.LatencyModel

// NodeID identifies a fabric node.
type NodeID = rdma.NodeID

// NewFabric creates a fabric with n nodes.
func NewFabric(eng *Engine, n int, lat LatencyModel) *Fabric {
	return rdma.NewFabric(eng, n, lat)
}

// DefaultLatency returns the calibrated InfiniBand-like cost model.
func DefaultLatency() LatencyModel { return rdma.DefaultLatency() }

// --- data-type specification ----------------------------------------------

// Class is a replicated object data type with its coordination relations.
type Class = spec.Class

// Analysis is the derived coordination analysis (categories, groups, deps).
type Analysis = spec.Analysis

// Call is an update method call instance.
type Call = spec.Call

// Args carries a call's arguments.
type Args = spec.Args

// State is the object state interface.
type State = spec.State

// MethodID indexes a method within a class.
type MethodID = spec.MethodID

// ProcID identifies a replica process.
type ProcID = spec.ProcID

// ArgsI builds integer arguments.
func ArgsI(vals ...int64) Args { return spec.ArgsI(vals...) }

// ArgsS builds string arguments.
func ArgsS(vals ...string) Args { return spec.ArgsS(vals...) }

// Analyze derives a class's coordination analysis.
func Analyze(cls *Class) (*Analysis, error) { return spec.Analyze(cls) }

// MustAnalyze is Analyze panicking on error.
func MustAnalyze(cls *Class) *Analysis { return spec.MustAnalyze(cls) }

// CheckRelations validates a class's declared relations by randomized
// testing; see internal/spec for the checked claims.
var CheckRelations = spec.CheckRelations

// --- the Hamband runtime ----------------------------------------------------

// Cluster is a Hamband deployment of one object over a fabric.
type Cluster = core.Cluster

// Replica is one node's runtime.
type Replica = core.Replica

// Options configures a cluster.
type Options = core.Options

// Tracer records per-call lifecycle events when installed in Options.
type Tracer = trace.Tracer

// NewCluster deploys the analyzed class over the fabric.
func NewCluster(fab *Fabric, an *Analysis, opts Options) *Cluster {
	return core.NewCluster(fab, an, opts)
}

// DefaultOptions returns production-shaped runtime parameters.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewTracer returns a lifecycle tracer holding at most limit events.
func NewTracer(eng *Engine, limit int) *Tracer { return trace.New(eng, limit) }

// Errors surfaced through Invoke callbacks.
var (
	ErrImpermissible = core.ErrImpermissible
	ErrDown          = core.ErrDown
)

// --- bundled data types -----------------------------------------------------

// CRDT and schema constructors, re-exported. Method IDs follow each
// constructor (see the internal package docs for the full list).
var (
	NewCounter           = crdt.NewCounter
	NewPNCounter         = crdt.NewPNCounter
	NewLWW               = crdt.NewLWW
	NewLWWMap            = crdt.NewLWWMap
	NewGSet              = crdt.NewGSet
	NewGSetBuffered      = crdt.NewGSetBuffered
	NewTwoPSet           = crdt.NewTwoPSet
	NewORSet             = crdt.NewORSet
	NewCart              = crdt.NewCart
	NewRGA               = crdt.NewRGA
	NewMVRegister        = crdt.NewMVRegister
	NewAccount           = crdt.NewAccount
	NewBankMap           = crdt.NewBankMap
	NewProjectManagement = schema.NewProjectManagement
	NewCourseware        = schema.NewCourseware
	NewMovie             = schema.NewMovie
	NewAuction           = schema.NewAuction
	NewTournament        = schema.NewTournament
)

// Tag builds a globally unique OR-set/RGA element tag from the issuing
// process and a per-process counter.
func Tag(p ProcID, seq uint64) int64 { return crdt.Tag(p, seq) }

// Frequently used method IDs, re-exported for the bundled types.
const (
	CounterAdd   = crdt.CounterAdd
	CounterValue = crdt.CounterValue

	AccountDeposit  = crdt.AccountDeposit
	AccountWithdraw = crdt.AccountWithdraw
	AccountBalance  = crdt.AccountBalance

	GSetAdd      = crdt.GSetAdd
	GSetContains = crdt.GSetContains
	GSetSize     = crdt.GSetSize

	ORSetAdd      = crdt.ORSetAdd
	ORSetRemove   = crdt.ORSetRemove
	ORSetContains = crdt.ORSetContains

	RGAInsert = crdt.RGAInsert
	RGARemove = crdt.RGARemove
	RGARead   = crdt.RGARead
)
