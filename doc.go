// Package hamband is a reproduction of "Hamband: RDMA Replicated Data
// Types" (Houshmand, Saberlatibari, Lesani — PLDI 2022): hybrid-consistency
// well-coordinated replicated data types (WRDTs) for the RDMA network
// model, built over a deterministic discrete-event RDMA simulator.
//
// The library layers, bottom to top:
//
//   - internal/sim — deterministic discrete-event engine with per-node CPUs
//   - internal/rdma — simulated RDMA fabric (RC queue pairs, one-sided
//     verbs, write permissions, suspend/crash fault injection)
//   - internal/msgnet — two-sided kernel-stack message network (baseline)
//   - internal/spec — object data types, coordination relations, analysis
//   - internal/wrdt, internal/rdmawrdt — the paper's abstract and concrete
//     operational semantics, executable, with a refinement checker
//   - internal/codec, internal/ring, internal/heartbeat,
//     internal/broadcast, internal/mu — the runtime's protocol substrates
//   - internal/core — the Hamband runtime (REDUCE / FREE / CONF dispatch)
//   - internal/crdt, internal/schema — the evaluated data types
//   - internal/baseline — the MSG and Mu SMR baselines
//   - internal/bench — the evaluation harness (Figures 8–13, ablations)
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for measured-versus-paper results.
package hamband
