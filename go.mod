module hamband

go 1.22
